package serve

// serve_test.go — black-box HTTP tests over httptest: determinism
// (identical requests → bit-identical bodies), equivalence with the
// direct simulator, canonicalization sharing one cache entry across
// spelled-differently-but-equal requests, strict validation, and the
// sweep/classify body interchangeability contract.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sim"
)

// newTestService builds a Server with its own registry and an httptest
// front end, torn down in dependency order (listener first, then
// engine drain).
func newTestService(t *testing.T, opts Options) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}
	if opts.AccessLog == nil {
		opts.AccessLog = io.Discard
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, reg
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", path, err)
	}
	return resp.StatusCode, resp.Header, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", path, err)
	}
	return resp.StatusCode, b
}

func counter(reg *obs.Registry, name string) int64 { return reg.Counter(name).Value() }

// TestClassifyDeterministicBody is the determinism contract at the
// wire: the same request served twice yields bit-identical bodies, the
// second from the result cache.
func TestClassifyDeterministicBody(t *testing.T) {
	_, ts, reg := newTestService(t, Options{})
	req := `{"kernel":"k1","npe":16,"page_size":32}`

	st1, _, b1 := post(t, ts, "/v1/classify", req)
	st2, _, b2 := post(t, ts, "/v1/classify", req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("status = %d, %d, want 200, 200 (bodies: %s / %s)", st1, st2, b1, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("bodies differ:\n%s\n%s", b1, b2)
	}
	if hits := counter(reg, MetricCacheHits); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if misses := counter(reg, MetricCacheMisses); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}

	var pr PointResult
	if err := json.Unmarshal(b1, &pr); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if pr.Kernel != "k1" || pr.Config.NPE != 16 || pr.Config.PageSize != 32 {
		t.Fatalf("echoed config wrong: %+v", pr)
	}
	if pr.Engine != "replay" {
		t.Fatalf("engine = %q, want replay for a stream-eligible point", pr.Engine)
	}
	if pr.Totals.Writes == 0 {
		t.Fatalf("totals empty: %+v", pr.Totals)
	}
}

// TestClassifyMatchesDirectSim pins the service to the simulator: the
// served totals/checksums equal a direct sim.Run of the canonical
// config.
func TestClassifyMatchesDirectSim(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	_, _, body := post(t, ts, "/v1/classify", `{"kernel":"k2","npe":8,"page_size":32}`)
	var pr PointResult
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decoding body %s: %v", body, err)
	}

	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		NPE: 8, PageSize: 32, CacheElems: 256,
		Policy: cache.LRU, Layout: partition.KindModulo,
	}
	res, err := sim.Run(k, pr.N, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := countersOut(res.Totals)
	if pr.Totals != want {
		t.Fatalf("served totals %+v != direct sim totals %+v", pr.Totals, want)
	}
	if len(pr.Checksums) != len(res.Checksums) {
		t.Fatalf("checksum count %d != %d", len(pr.Checksums), len(res.Checksums))
	}
	for i, cs := range res.Checksums {
		if pr.Checksums[i].Sum != cs.Sum || pr.Checksums[i].Name != cs.Name {
			t.Fatalf("checksum %d: served %+v != direct %+v", i, pr.Checksums[i], cs)
		}
	}
}

// TestCanonicalizationSharesCacheEntry: with the cache disabled the
// policy is inert, so ce=0+fifo and ce=0+lru canonicalize to one key —
// identical bodies and the second request is a cache hit.
func TestCanonicalizationSharesCacheEntry(t *testing.T) {
	_, ts, reg := newTestService(t, Options{})
	_, _, b1 := post(t, ts, "/v1/classify", `{"kernel":"k3","cache_elems":0,"policy":"fifo"}`)
	_, _, b2 := post(t, ts, "/v1/classify", `{"kernel":"k3","cache_elems":0,"policy":"lru"}`)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("equivalent requests produced different bodies:\n%s\n%s", b1, b2)
	}
	if hits := counter(reg, MetricCacheHits); hits != 1 {
		t.Fatalf("cache hits = %d, want 1 (canonicalization must share the entry)", hits)
	}
	var pr PointResult
	if err := json.Unmarshal(b1, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Config.CacheElems != 0 || pr.Config.Policy != "lru" {
		t.Fatalf("canonical config not echoed: %+v", pr.Config)
	}
}

// TestClassifyValidation rejects malformed requests with 400 and a
// JSON error body, counting them as bad requests.
func TestClassifyValidation(t *testing.T) {
	_, ts, reg := newTestService(t, Options{})
	cases := []struct {
		name, body string
	}{
		{"unknown kernel", `{"kernel":"nope"}`},
		{"unknown field", `{"kernel":"k1","pagesize":32}`},
		{"unknown policy", `{"kernel":"k1","policy":"mru"}`},
		{"unknown layout", `{"kernel":"k1","layout":"diagonal"}`},
		{"negative n", `{"kernel":"k1","n":-1}`},
		{"negative layout_run", `{"kernel":"k1","layout":"blockcyclic","layout_run":-2}`},
		{"not json", `kernel=k1`},
	}
	for _, tc := range cases {
		st, _, body := post(t, ts, "/v1/classify", tc.body)
		if st != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, st, body)
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
	if bad := counter(reg, MetricBadRequests); bad != int64(len(cases)) {
		t.Fatalf("bad_requests = %d, want %d", bad, len(cases))
	}
}

// TestSweepBodiesMatchClassify is the interchangeability contract: each
// point of a sweep body is bit-identical to the /v1/classify body of
// the same point.
func TestSweepBodiesMatchClassify(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	st, _, body := post(t, ts, "/v1/sweep", `{"kernels":["k1"],"npes":[1,2,4],"page_sizes":[32]}`)
	if st != http.StatusOK {
		t.Fatalf("sweep status = %d (body %s)", st, body)
	}
	var sr SweepResult
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != 3 || len(sr.Points) != 3 {
		t.Fatalf("count = %d, points = %d, want 3", sr.Count, len(sr.Points))
	}
	for i, npe := range []int{1, 2, 4} {
		_, _, cb := post(t, ts, "/v1/classify",
			fmt.Sprintf(`{"kernel":"k1","npe":%d,"page_size":32,"cache_elems":256}`, npe))
		if !bytes.Equal([]byte(sr.Points[i]), cb) {
			t.Fatalf("sweep point %d differs from its classify body:\n%s\n%s", i, sr.Points[i], cb)
		}
	}
}

// TestSweepPointLimit bounds grid expansion server-side.
func TestSweepPointLimit(t *testing.T) {
	_, ts, _ := newTestService(t, Options{MaxSweepPoints: 4})
	st, _, body := post(t, ts, "/v1/sweep", `{"kernels":["k1"],"npes":[1,2,4,8,16]}`)
	if st != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", st, body)
	}
	if !bytes.Contains(body, []byte("limit")) {
		t.Fatalf("error body should name the limit: %s", body)
	}
}

// TestReadEndpoints smoke-tests /v1/kernels, /healthz and /metrics.
func TestReadEndpoints(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})

	st, body := get(t, ts, "/v1/kernels")
	if st != http.StatusOK {
		t.Fatalf("/v1/kernels status = %d", st)
	}
	var infos []KernelInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(loops.All()) {
		t.Fatalf("kernels listed = %d, want %d", len(infos), len(loops.All()))
	}
	paper := 0
	for _, ki := range infos {
		if ki.Paper {
			paper++
		}
	}
	if paper != len(loops.PaperSet()) {
		t.Fatalf("paper kernels flagged = %d, want %d", paper, len(loops.PaperSet()))
	}

	st, body = get(t, ts, "/healthz")
	if st != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("/healthz = %d %s", st, body)
	}
	var health struct {
		Status string `json:"status"`
		Build  struct {
			Go string `json:"go"`
		} `json:"build"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("/healthz body not JSON: %v", err)
	}
	if health.Status != "ok" || health.Build.Go == "" {
		t.Fatalf("/healthz missing status or build info: %s", body)
	}

	post(t, ts, "/v1/classify", `{"kernel":"k1"}`)
	st, body = get(t, ts, "/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics status = %d", st)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MetricClassifyRequests] != 1 {
		t.Fatalf("metrics snapshot missing %s: %v", MetricClassifyRequests, snap.Counters)
	}
}

// TestPerPEAndTrafficOptIn: the heavy response sections appear only on
// request, and opting in changes the cache key rather than the cached
// body.
func TestPerPEAndTrafficOptIn(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	_, _, slim := post(t, ts, "/v1/classify", `{"kernel":"k1","npe":4}`)
	_, _, fat := post(t, ts, "/v1/classify", `{"kernel":"k1","npe":4,"include_per_pe":true,"include_traffic":true}`)

	var sp, fp PointResult
	if err := json.Unmarshal(slim, &sp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fat, &fp); err != nil {
		t.Fatal(err)
	}
	if len(sp.PerPE) != 0 || len(sp.Traffic) != 0 {
		t.Fatalf("default body carries heavy sections: %s", slim)
	}
	if len(fp.PerPE) != 4 || len(fp.Traffic) != 4 {
		t.Fatalf("opt-in body missing sections: per_pe=%d traffic=%d", len(fp.PerPE), len(fp.Traffic))
	}
	if sp.Totals != fp.Totals {
		t.Fatalf("totals differ between slim and fat bodies: %+v vs %+v", sp.Totals, fp.Totals)
	}
}
