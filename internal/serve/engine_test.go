package serve

// engine_test.go — white-box concurrency tests of the execution core:
// the execute-once guarantee under concurrent identical sweeps, the
// admission control path (429 + Retry-After), graceful drain, and
// per-request deadlines. The execHook seam pins workers so overload
// and drain states are reached deterministically instead of by timing.

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/refstream"
)

// TestConcurrentIdenticalSweepsSingleCapture is the acceptance test of
// the serving tentpole: k concurrent identical /v1/sweep requests
// trigger exactly one reference-stream capture and one execution per
// distinct grid point, every response bit-identical.
func TestConcurrentIdenticalSweepsSingleCapture(t *testing.T) {
	const clients = 8
	_, ts, reg := newTestService(t, Options{MaxInflight: clients})
	req := `{"kernels":["k2"],"npes":[1,2,4]}`

	var (
		wg     sync.WaitGroup
		bodies [clients][]byte
		codes  [clients]int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = post(t, ts, "/v1/sweep", req)
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("sweep %d: status %d (body %s)", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("sweep %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	// The load-bearing guarantee: one capture, no matter how the 24
	// point lookups interleave.
	if captures := counter(reg, MetricStreamCaptures); captures != 1 {
		t.Fatalf("stream captures = %d, want exactly 1 for %d identical sweeps", captures, clients)
	}
	// Executions: at least one per distinct point, and far fewer than
	// one per lookup (the cache/dedup path must absorb the rest; a rare
	// re-execution in the flight→cache handoff window is legal).
	points := counter(reg, MetricPointsExecuted)
	if points < 3 || points > 6 {
		t.Fatalf("points executed = %d, want ~3 (one per distinct grid point)", points)
	}
	// Accounting identities: every lookup is a hit or a miss; every
	// miss either led an execution or joined one.
	hits, misses := counter(reg, MetricCacheHits), counter(reg, MetricCacheMisses)
	dedup := counter(reg, MetricDedupWaits)
	if hits+misses != int64(clients*3) {
		t.Fatalf("hits %d + misses %d != %d lookups", hits, misses, clients*3)
	}
	if misses != points+dedup {
		t.Fatalf("misses %d != executed %d + dedup-joined %d", misses, points, dedup)
	}
}

// TestSweepRidesBatchReplay pins the sweep handler to the batch path:
// a sweep touching two kernels is served by exactly two batch passes
// (one per capture group), not one replay per point.
func TestSweepRidesBatchReplay(t *testing.T) {
	_, ts, reg := newTestService(t, Options{})
	code, _, body := post(t, ts, "/v1/sweep", `{"kernels":["k1","k3"],"npes":[1,2,4,8]}`)
	if code != http.StatusOK {
		t.Fatalf("sweep status = %d (body %s)", code, body)
	}
	if groups := counter(reg, refstream.MetricBatchGroups); groups != 2 {
		t.Fatalf("batch groups = %d, want 2 (one per kernel)", groups)
	}
	if points := counter(reg, MetricPointsExecuted); points != 8 {
		t.Fatalf("points executed = %d, want 8", points)
	}
}

// TestParBudget pins the budget derivation: an even share of the
// worker pool across admitted requests, floored at one.
func TestParBudget(t *testing.T) {
	s, _, _ := newTestService(t, Options{Workers: 8, MaxInflight: 16})
	e := s.Engine()
	if got := e.parBudget(); got != 8 {
		t.Errorf("idle engine: budget = %d, want all 8 workers", got)
	}
	var releases []func()
	take := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			rel, err := e.admit()
			if err != nil {
				t.Fatal(err)
			}
			releases = append(releases, rel)
		}
	}
	take(2)
	if got := e.parBudget(); got != 4 {
		t.Errorf("2 admitted: budget = %d, want 4", got)
	}
	take(1)
	if got := e.parBudget(); got != 2 {
		t.Errorf("3 admitted: budget = %d, want 2", got)
	}
	take(9)
	if got := e.parBudget(); got != 1 {
		t.Errorf("12 admitted: budget = %d, want floor of 1", got)
	}
	for _, rel := range releases {
		rel()
	}
	if got := e.parBudget(); got != 8 {
		t.Errorf("drained engine: budget = %d, want 8 again", got)
	}
}

// TestSweepParallelBatchByteIdentical: a sweep wide enough to engage
// parallel batch replay (an idle Workers-8 engine gives its one batch
// task the full budget) must produce bodies byte-identical to the same
// sweep on a single-worker engine, whose batch passes stay serial.
func TestSweepParallelBatchByteIdentical(t *testing.T) {
	req := `{"kernels":["k1"],"npes":[1,2,4,8,16,32,64],"page_sizes":[16,32]}`

	_, serialTS, _ := newTestService(t, Options{Workers: 1})
	code, _, serialBody := post(t, serialTS, "/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("serial sweep status = %d (body %s)", code, serialBody)
	}

	_, parTS, reg := newTestService(t, Options{Workers: 8, MaxInflight: 16})
	code, _, parBody := post(t, parTS, "/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("parallel sweep status = %d (body %s)", code, parBody)
	}
	if !bytes.Equal(parBody, serialBody) {
		t.Fatalf("parallel-budget sweep body differs from single-worker body:\n%s\n%s", parBody, serialBody)
	}
	// The 14-point group must actually have fanned out: the partitions
	// histogram records one observation > 1 for the batch pass.
	h, ok := reg.Snapshot().Histograms[refstream.MetricBatchPartitions]
	if !ok || h.Count != 1 {
		t.Fatalf("batch partitions histogram: %+v, want one observation", h)
	}
	if h.Sum <= 1 {
		t.Errorf("batch pass used %d partitions, want > 1 (budget not applied)", h.Sum)
	}
}

// pinWorkers installs an execHook that parks every executing worker
// until release is closed. Must run before any traffic.
func pinWorkers(s *Server) (entered chan struct{}, release chan struct{}) {
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	s.Engine().execHook = func() {
		entered <- struct{}{}
		<-release
	}
	return entered, release
}

// TestOverloadReturns429: with one admission slot occupied, the next
// request is rejected with 429 and a Retry-After header, and the
// occupant still completes.
func TestOverloadReturns429(t *testing.T) {
	s, ts, reg := newTestService(t, Options{Workers: 1, MaxInflight: 1})
	entered, release := pinWorkers(s)

	type result struct {
		code int
		body []byte
	}
	first := make(chan result, 1)
	go func() {
		code, _, body := post(t, ts, "/v1/classify", `{"kernel":"k1"}`)
		first <- result{code, body}
	}()
	<-entered // the first request is admitted and executing

	code, hdr, body := post(t, ts, "/v1/classify", `{"kernel":"k1","npe":2}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if rejected := counter(reg, MetricRejected); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}

	close(release)
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("first request: status %d after release (body %s)", r.code, r.body)
	}
}

// TestCloseDrainsInflight: Close blocks until admitted work finishes
// (the in-flight request completes with 200), and afterwards new
// requests are refused with 503.
func TestCloseDrainsInflight(t *testing.T) {
	s, ts, _ := newTestService(t, Options{Workers: 1})
	entered, release := pinWorkers(s)

	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		code, _, body := post(t, ts, "/v1/classify", `{"kernel":"k1"}`)
		inflight <- result{code, body}
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a request was still executing")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight work finished")
	}
	r := <-inflight
	if r.code != http.StatusOK {
		t.Fatalf("drained request: status %d, want 200 (body %s)", r.code, r.body)
	}

	code, _, _ := post(t, ts, "/v1/classify", `{"kernel":"k1"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close request: status %d, want 503", code)
	}
}

// TestDeadlineReturns504: a request whose deadline_ms expires while its
// point is stuck executing gets 504; the execution itself completes
// after release and seeds the cache for the next request.
func TestDeadlineReturns504(t *testing.T) {
	s, ts, reg := newTestService(t, Options{Workers: 1})
	entered, release := pinWorkers(s)
	defer func() {
		// Unpin before the cleanup-ordered Close so the drain completes.
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	done := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts, "/v1/classify", `{"kernel":"k1","deadline_ms":50}`)
		done <- code
	}()
	<-entered
	code := <-done
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	if dl := counter(reg, MetricDeadlineExceeded); dl != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", dl)
	}

	// The abandoned execution still lands in the cache.
	close(release)
	deadlineWait := time.Now().Add(5 * time.Second)
	for s.Engine().CacheLen() == 0 {
		if time.Now().After(deadlineWait) {
			t.Fatal("abandoned execution never populated the result cache")
		}
		time.Sleep(time.Millisecond)
	}
	code2, _, _ := post(t, ts, "/v1/classify", `{"kernel":"k1","deadline_ms":50}`)
	if code2 != http.StatusOK {
		t.Fatalf("cached retry: status %d, want 200", code2)
	}
}

// TestEngineDeadlineDerivation pins the deadline resolution order:
// explicit deadline_ms, then Options.DefaultDeadline, then the machine
// watchdog rule.
func TestEngineDeadlineDerivation(t *testing.T) {
	e := newEngine(Options{Metrics: obs.NewRegistry()})
	defer e.Close()
	if d := e.deadline(250, 64, 1000); d != 250*time.Millisecond {
		t.Fatalf("explicit deadline = %v, want 250ms", d)
	}
	if d := e.deadline(0, 64, 1000); d < 5*time.Second || d > 60*time.Second {
		t.Fatalf("derived deadline = %v, want within the watchdog's [5s, 60s] envelope", d)
	}

	e2 := newEngine(Options{Metrics: obs.NewRegistry(), DefaultDeadline: 2 * time.Second})
	defer e2.Close()
	if d := e2.deadline(0, 64, 1000); d != 2*time.Second {
		t.Fatalf("configured default = %v, want 2s", d)
	}
}

// TestCloseIdempotent: Close twice (and concurrently) is safe.
func TestCloseIdempotent(t *testing.T) {
	e := newEngine(Options{Metrics: obs.NewRegistry()})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	wg.Wait()
	if _, err := e.admit(); err != ErrClosed {
		t.Fatalf("admit after Close = %v, want ErrClosed", err)
	}
}
