package serve

import (
	"fmt"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("get on empty cache hit")
	}
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if b, ok := c.get("a"); !ok || string(b) != "A" {
		t.Fatalf("get a = %q, %v", b, ok)
	}
	// "a" was refreshed, so adding "c" evicts "b".
	c.add("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; recency not tracked")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Re-adding an existing key replaces the body without growing.
	c.add("a", []byte("A2"))
	if b, _ := c.get("a"); string(b) != "A2" {
		t.Fatalf("re-add did not replace body: %q", b)
	}
	if c.len() != 2 {
		t.Fatalf("len after re-add = %d, want 2", c.len())
	}
}

func TestLRUBound(t *testing.T) {
	c := newLRU(8)
	for i := 0; i < 100; i++ {
		c.add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.len() != 8 {
		t.Fatalf("len = %d, want the capacity 8", c.len())
	}
	for i := 92; i < 100; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d missing", i)
		}
	}
}
