package serve

// slo_test.go — the env-gated serving SLO check, in the style of the
// REFSTREAM_PERF_GATE: skipped by default (shared CI runners make
// latency assertions flaky as hard failures), enabled in the dedicated
// CI step with SERVE_SLO_GATE=1. It drives the deterministic load
// generator against an in-process server and asserts (a) every hot
// stage histogram actually observed this run and (b) the server-side
// stage p99s stay inside generous ceilings — catching only gross
// regressions (an accidental O(n^2), a lock on the hot path), not
// noise.

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestServeStageSLOGate(t *testing.T) {
	if os.Getenv("SERVE_SLO_GATE") == "" {
		t.Skip("set SERVE_SLO_GATE=1 to run the serving SLO gate")
	}
	reg := obs.NewRegistry()
	s := New(Options{Metrics: reg, AccessLog: io.Discard})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		s.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Load(ctx, LoadOptions{
		BaseURL:     "http://" + ln.Addr().String(),
		Requests:    600,
		Concurrency: 8,
		DupFraction: 0.8,
		SweepEvery:  25,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load run had %d errors", rep.Errors)
	}
	if rep.Stages == nil {
		t.Fatal("load report carries no server-side stage quantiles")
	}

	// Ceilings in milliseconds, far above healthy numbers (typical p99s
	// are well under a millisecond for the cheap stages): only a gross
	// regression trips them. serve.stage.direct_us is absent on purpose —
	// the loadgen mix never sends partial_fill.
	ceilings := map[string]float64{
		MetricStageDecodeUS:      50,
		MetricStageAdmitWaitUS:   50,
		MetricStageCacheLookupUS: 50,
		MetricStageCaptureUS:     2000,
		MetricStageReplayUS:      2000,
		MetricStageEncodeUS:      100,
		MetricStageFlightWaitUS:  5000,
	}
	for name, ceiling := range ceilings {
		q, ok := rep.Stages[name]
		if !ok {
			t.Errorf("stage %s never observed during the load run", name)
			continue
		}
		if q.P99MS > ceiling {
			t.Errorf("stage %s p99 = %.3fms exceeds the %.0fms SLO ceiling (n=%d)", name, q.P99MS, ceiling, q.Count)
		}
	}
}
