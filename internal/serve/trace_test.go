package serve

// trace_test.go — the observability layer's contracts at the wire:
// tracing observes and never participates (bodies byte-identical with
// and without the full tracing/logging stack), X-Request-ID round-
// trips, the access log emits one parseable JSON line per request, the
// trace ring retains and bounds, /metrics negotiates the Prometheus
// exposition, and the instrumented sweep path still matches a direct
// refstream capture + batch replay bit for bit.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/refstream"
	"repro/internal/sim"
)

// TestTracedBodiesByteIdentical is the observation-not-participation
// contract: a server with the full observability stack (registry,
// trace ring, access log, request IDs) returns bodies byte-identical
// to a bare server's for the same requests, across classify and sweep,
// cold and warm.
func TestTracedBodiesByteIdentical(t *testing.T) {
	_, bare, _ := newTestService(t, Options{})
	var buf syncBuffer
	_, full, _ := newTestService(t, Options{AccessLog: &buf})

	reqs := []struct{ path, body string }{
		{"/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`},
		{"/v1/classify", `{"kernel":"k6","npe":8,"partial_fill":true}`},
		{"/v1/sweep", `{"kernels":["k1","k12"],"npes":[4,16],"page_sizes":[32]}`},
	}
	for _, rq := range reqs {
		for pass := 0; pass < 2; pass++ { // cold (execute) then warm (cache)
			st1, _, b1 := post(t, bare, rq.path, rq.body)
			st2, _, b2 := post(t, full, rq.path, rq.body)
			if st1 != http.StatusOK || st2 != http.StatusOK {
				t.Fatalf("%s pass %d: status %d vs %d", rq.path, pass, st1, st2)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("%s pass %d: traced body differs from untraced:\n%s\n%s", rq.path, pass, b1, b2)
			}
		}
	}
}

// TestRequestIDRoundTrip pins the ID contract: a legal caller ID is
// echoed and retrievable from /debug/trace; an illegal one is replaced
// with a generated ID; a missing one is generated.
func TestRequestIDRoundTrip(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	body := `{"kernel":"k1","npe":16,"page_size":32}`

	do := func(id string) (string, int) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.Header.Get("X-Request-ID"), resp.StatusCode
	}

	if got, st := do("my-req.1_2"); st != http.StatusOK || got != "my-req.1_2" {
		t.Fatalf("legal ID not echoed: got %q status %d", got, st)
	}
	if got, _ := do("bad id;drop"); got == "" || got == "bad id;drop" {
		t.Fatalf("illegal ID not replaced: %q", got)
	}
	if got, _ := do(""); got == "" {
		t.Fatal("missing ID not generated")
	}

	// The accepted ID is retrievable from the ring with its span tree.
	st, body2 := get(t, ts, "/debug/trace?id=my-req.1_2")
	if st != http.StatusOK {
		t.Fatalf("/debug/trace?id= lookup = %d %s", st, body2)
	}
	var out struct {
		ID     string `json:"id"`
		Route  string `json:"route"`
		Status int    `json:"status"`
		Done   bool   `json:"done"`
		Spans  []struct {
			Name   string `json:"name"`
			Parent int    `json:"parent"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body2, &out); err != nil {
		t.Fatalf("trace body not JSON: %v", err)
	}
	if out.ID != "my-req.1_2" || out.Route != "/v1/classify" || out.Status != http.StatusOK || !out.Done {
		t.Fatalf("trace header wrong: %+v", out)
	}
	stages := map[string]bool{}
	for _, sp := range out.Spans {
		stages[sp.Name] = true
	}
	for _, want := range []string{"decode", "admit_wait", "cache_lookup", "flight_wait", "capture", "replay", "encode"} {
		if !stages[want] {
			t.Fatalf("trace missing %q span; have %v", want, stages)
		}
	}

	// Unknown IDs 404.
	if st, _ := get(t, ts, "/debug/trace?id=never-seen"); st != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d, want 404", st)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the access
// log.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestAccessLogLines asserts one parseable JSON line per request with
// the promised fields.
func TestAccessLogLines(t *testing.T) {
	var buf syncBuffer
	_, ts, _ := newTestService(t, Options{AccessLog: &buf})

	post(t, ts, "/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`)
	post(t, ts, "/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`) // cache hit
	post(t, ts, "/v1/classify", `{"kernel":"nope"}`)                       // 400

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("access-log line not JSON: %v: %s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("access log lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	for i, m := range lines {
		for _, k := range []string{"ts", "id", "route", "status", "dur_ms"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing %q: %v", i, k, m)
			}
		}
		if m["route"] != "/v1/classify" {
			t.Fatalf("line %d route = %v", i, m["route"])
		}
	}
	if lines[0]["status"].(float64) != 200 || lines[2]["status"].(float64) != 400 {
		t.Fatalf("statuses wrong: %v", lines)
	}
	// The miss line records cache_misses, the hit line cache_hits.
	if c := lines[0]["counts"].(map[string]any); c["cache_misses"].(float64) != 1 {
		t.Fatalf("first line counts = %v, want a cache miss", c)
	}
	if c := lines[1]["counts"].(map[string]any); c["cache_hits"].(float64) != 1 {
		t.Fatalf("second line counts = %v, want a cache hit", c)
	}
	if _, ok := lines[0]["stages_us"].(map[string]any)["replay"]; !ok {
		t.Fatalf("miss line missing replay stage: %v", lines[0]["stages_us"])
	}
}

// TestTraceRingBound pins the /debug/trace listing: newest first,
// bounded by the configured capacity.
func TestTraceRingBound(t *testing.T) {
	_, ts, _ := newTestService(t, Options{TraceRingEntries: 4})
	for i := 0; i < 7; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify",
			strings.NewReader(`{"kernel":"k1","npe":16,"page_size":32}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", fmt.Sprintf("req-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	st, body := get(t, ts, "/debug/trace")
	if st != http.StatusOK {
		t.Fatalf("/debug/trace = %d", st)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if len(list) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(list))
	}
	if list[0].ID != "req-6" || list[3].ID != "req-3" {
		t.Fatalf("listing order wrong: %+v", list)
	}
	// Evicted IDs are gone.
	if st, _ := get(t, ts, "/debug/trace?id=req-0"); st != http.StatusNotFound {
		t.Fatalf("evicted trace still served: %d", st)
	}
}

// TestInstrumentedSweepMatchesBatchReplay is the determinism pin for
// the instrumented execution path: a traced sweep's point bodies are
// bit-identical to encoding a direct refstream Capture + RunBatch of
// the same canonical points.
func TestInstrumentedSweepMatchesBatchReplay(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	req := `{"kernels":["k12"],"npes":[4,16],"page_sizes":[32,64]}`
	st, _, body := post(t, ts, "/v1/sweep", req)
	if st != http.StatusOK {
		t.Fatalf("sweep = %d %s", st, body)
	}
	var sr struct {
		Points []json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	var sreq SweepRequest
	if err := json.Unmarshal([]byte(req), &sreq); err != nil {
		t.Fatal(err)
	}
	pts, err := canonSweep(sreq, Options{}.withDefaults().limits())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sr.Points) {
		t.Fatalf("point count %d vs %d", len(pts), len(sr.Points))
	}
	stream, err := refstream.Capture(pts[0].kernel, pts[0].n)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]sim.Config, len(pts))
	for i, p := range pts {
		cfgs[i] = p.cfg
	}
	res, err := refstream.NewReplayer().RunBatch(stream, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		want, err := encodePoint(p, "replay", res[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, sr.Points[i]) {
			t.Fatalf("point %d: served body differs from direct batch replay:\n%s\n%s", i, sr.Points[i], want)
		}
	}
}

// TestMetricsPromExposition covers the format negotiation and the
// exposition content: ?format=prom and an Accept header both select
// the text format, the default stays JSON, and both carry
// Cache-Control: no-store.
func TestMetricsPromExposition(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	post(t, ts, "/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`)

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("prom Cache-Control = %q, want no-store", cc)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE serve_classify_requests counter",
		"serve_classify_requests 1",
		"# TYPE serve_stage_replay_us histogram",
		`serve_stage_replay_us_bucket{le="+Inf"}`,
		"serve_stage_replay_us_count 1",
		"build_info 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Accept negotiation: text/plain → prom; default and explicit JSON
	// accept → JSON object.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Accept: text/plain negotiated %q", ct)
	}
	st, body := get(t, ts, "/metrics")
	if st != http.StatusOK || !json.Valid(body) || body[0] != '{' {
		t.Fatalf("default /metrics not a JSON object: %d %.80s", st, body)
	}

	// Headers on the other read endpoints: healthz is also no-store.
	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if cc := resp3.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("healthz Cache-Control = %q, want no-store", cc)
	}
}

// TestStageHistogramsPopulated asserts the serve.stage.* histograms
// observe every request uniformly — the engine records them even when
// a handler isn't traced.
func TestStageHistogramsPopulated(t *testing.T) {
	_, ts, reg := newTestService(t, Options{})
	post(t, ts, "/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`)
	post(t, ts, "/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`)
	post(t, ts, "/v1/classify", `{"kernel":"k6","npe":8,"partial_fill":true}`)
	post(t, ts, "/v1/sweep", `{"kernels":["k1"],"npes":[2,4]}`)

	snap := reg.Snapshot()
	for name, wantMin := range map[string]int64{
		MetricStageDecodeUS:      4,
		MetricStageAdmitWaitUS:   4,
		MetricStageCacheLookupUS: 4,
		MetricStageFlightWaitUS:  3, // the warm classify never waits
		MetricStageCaptureUS:     2,
		MetricStageReplayUS:      2,
		MetricStageDirectUS:      1, // the partial-fill point
		MetricStageEncodeUS:      3,
	} {
		if got := snap.Histograms[name].Count; got < wantMin {
			t.Errorf("%s count = %d, want >= %d", name, got, wantMin)
		}
	}
}
