package serve

// store_test.go — the engine against a durable capture tier: a second
// engine warm-starting from the first's store directory serves the
// same sweep with zero capture executions and bit-identical bodies,
// and the drain path reports 503 + Retry-After (never 504) so a
// router can tell "retry on a peer" from "the work is too slow".

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/refstream/store"
)

const sweepGridReq = `{"kernels":["k1","k3","k6"],"npes":[2,8],"page_sizes":[32,64]}`

// TestWarmStartFromCaptureStore is the warm-start acceptance test at
// the engine level: captures persisted by server A are reused by a
// fresh server B sharing the directory — B's capture counter stays 0,
// the store's hit counter rises, and the sweep bodies are identical.
func TestWarmStartFromCaptureStore(t *testing.T) {
	dir := t.TempDir()

	regA := obs.NewRegistry()
	stA, err := store.Open(dir, regA)
	if err != nil {
		t.Fatal(err)
	}
	_, tsA, _ := newTestService(t, Options{Metrics: regA, CaptureStore: stA})
	code, _, bodyA := post(t, tsA, "/v1/sweep", sweepGridReq)
	if code != http.StatusOK {
		t.Fatalf("server A sweep: %d: %s", code, bodyA)
	}
	if counter(regA, MetricStreamCaptures) == 0 {
		t.Fatal("server A executed no captures — the test exercises nothing")
	}
	if counter(regA, store.MetricPuts) == 0 {
		t.Fatal("server A persisted no captures")
	}

	// Server B: the restarted shard. Fresh registry, fresh engine, same
	// directory.
	regB := obs.NewRegistry()
	stB, err := store.Open(dir, regB)
	if err != nil {
		t.Fatal(err)
	}
	_, tsB, _ := newTestService(t, Options{Metrics: regB, CaptureStore: stB})
	code, _, bodyB := post(t, tsB, "/v1/sweep", sweepGridReq)
	if code != http.StatusOK {
		t.Fatalf("server B sweep: %d: %s", code, bodyB)
	}
	if got := counter(regB, MetricStreamCaptures); got != 0 {
		t.Errorf("warm-started server executed %d captures, want 0", got)
	}
	if got := counter(regB, store.MetricHits); got == 0 {
		t.Error("warm-started server recorded no store hits")
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Error("warm-started sweep body differs from the original")
	}
}

// TestDrainReports503NotRetryableAs504 pins the drain contract: a
// request rejected because the engine is closing gets 503 with
// Retry-After, never 504 — the router's signal that the identical
// request will succeed on a peer.
func TestDrainReports503NotRetryableAs504(t *testing.T) {
	s, ts, _ := newTestService(t, Options{})
	s.Engine().Close()
	code, hdr, body := post(t, ts, "/v1/classify", `{"kernel":"k1","npe":4}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("classify against closed engine: %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 from a draining engine is missing Retry-After")
	}
}
