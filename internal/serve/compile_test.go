package serve

// compile_test.go — POST /v1/compile end to end: a compiled kernel is
// immediately usable in /v1/classify and /v1/sweep, ids and bodies are
// byte-identical across repeated requests and across warm/cold
// registries (the content-addressing contract at the HTTP layer), the
// compiled-kernel listing documents the id scheme, and pathological
// inputs come back as structured 4xx bodies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/kernelreg"
	"repro/internal/obs"
)

// userSource is a tiny SA-clean user kernel for the compile tests.
const userSource = `PROGRAM userk
  ARRAY A(n+1) OUTPUT
  ARRAY B(n+1) INPUT
  DO i = 1, n
    A(i) = 2*B(i)
  END DO
END
`

// violatingSource carries an in-place update the converter must
// rewrite before the program can compile.
const violatingSource = `PROGRAM relax
  ARRAY U(n+2) INPUT
  DO i = 1, n
    U(i) = 0.5*U(i) + 0.5*U(i+1)
  END DO
END
`

func compileBody(t *testing.T, req kernelreg.CompileRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCompileClassifySweepByteIdentity(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	body := compileBody(t, kernelreg.CompileRequest{Source: userSource})

	code1, _, raw1 := post(t, ts, "/v1/compile", body)
	code2, _, raw2 := post(t, ts, "/v1/compile", body)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("compile: %d / %d: %s", code1, code2, raw1)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("repeated compile bodies differ:\n%s\n%s", raw1, raw2)
	}
	var resp kernelreg.CompileResponse
	if err := json.Unmarshal(raw1, &resp); err != nil {
		t.Fatal(err)
	}
	if !kernelreg.IsCompiledID(resp.Kernel) {
		t.Fatalf("kernel id %q lacks the compiled prefix", resp.Kernel)
	}

	classify := fmt.Sprintf(`{"kernel":%q,"npe":8}`, resp.Kernel)
	ccode1, _, cbody1 := post(t, ts, "/v1/classify", classify)
	ccode2, _, cbody2 := post(t, ts, "/v1/classify", classify)
	if ccode1 != http.StatusOK || ccode2 != http.StatusOK {
		t.Fatalf("classify compiled kernel: %d / %d: %s", ccode1, ccode2, cbody1)
	}
	if !bytes.Equal(cbody1, cbody2) {
		t.Fatal("repeated classify bodies over a compiled kernel differ")
	}

	sweep := fmt.Sprintf(`{"kernels":[%q,"k1"],"npes":[2,8],"page_sizes":[32,64]}`, resp.Kernel)
	scode1, _, sbody1 := post(t, ts, "/v1/sweep", sweep)
	scode2, _, sbody2 := post(t, ts, "/v1/sweep", sweep)
	if scode1 != http.StatusOK || scode2 != http.StatusOK {
		t.Fatalf("sweep over compiled kernel: %d / %d: %s", scode1, scode2, sbody1)
	}
	if !bytes.Equal(sbody1, sbody2) {
		t.Fatal("repeated sweep bodies over a compiled kernel differ")
	}

	// Cold registry: a second server compiles the same source to the
	// same id and serves the byte-identical sweep body — content
	// addressing makes "which process compiled it" unobservable.
	_, ts2, _ := newTestService(t, Options{Metrics: obs.NewRegistry()})
	code3, _, raw3 := post(t, ts2, "/v1/compile", body)
	if code3 != http.StatusOK {
		t.Fatalf("cold compile: %d: %s", code3, raw3)
	}
	if !bytes.Equal(raw1, raw3) {
		t.Fatalf("cold-registry compile body differs:\n%s\n%s", raw1, raw3)
	}
	_, _, sbody3 := post(t, ts2, "/v1/sweep", sweep)
	if !bytes.Equal(sbody1, sbody3) {
		t.Fatal("cold-registry sweep body differs from warm")
	}
}

func TestCompileConvertThenServe(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})

	// Without convert: structured 422 with the SA diagnostics.
	code, _, raw := post(t, ts, "/v1/compile", compileBody(t, kernelreg.CompileRequest{Source: violatingSource}))
	if code != 422 {
		t.Fatalf("violating compile: %d: %s", code, raw)
	}
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != kernelreg.CodeSAViolations || len(eb.Diagnostics) == 0 {
		t.Fatalf("422 body lacks code/diagnostics: %s", raw)
	}

	// With convert: compiles, and the returned id classifies.
	resp := mustCompile(t, ts, kernelreg.CompileRequest{Source: violatingSource, Convert: true})
	if !resp.Converted || len(resp.Rewrites) == 0 {
		t.Fatalf("convert response: converted=%v rewrites=%d", resp.Converted, len(resp.Rewrites))
	}
	ccode, _, cbody := post(t, ts, "/v1/classify", fmt.Sprintf(`{"kernel":%q,"npe":4}`, resp.Kernel))
	if ccode != http.StatusOK {
		t.Fatalf("classify converted kernel: %d: %s", ccode, cbody)
	}
}

func TestClassifyUnknownCompiledID(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	code, _, raw := post(t, ts, "/v1/classify", `{"kernel":"u:deadbeef","npe":4}`)
	if code != http.StatusNotFound {
		t.Fatalf("unknown compiled id: %d: %s", code, raw)
	}
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != kernelreg.CodeUnknownKernel {
		t.Fatalf("404 body code %q, want %q: %s", eb.Code, kernelreg.CodeUnknownKernel, raw)
	}
}

func TestCompiledKernelListing(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})

	code, raw := get(t, ts, "/v1/kernels?compiled=1")
	if code != http.StatusOK {
		t.Fatalf("empty listing: %d: %s", code, raw)
	}
	var out CompiledKernelsOut
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 || out.Kernels == nil || out.IDScheme != IDSchemeDoc {
		t.Fatalf("empty listing body: %s", raw)
	}

	resp := mustCompile(t, ts, kernelreg.CompileRequest{Source: userSource})
	_, raw = get(t, ts, "/v1/kernels?compiled=1")
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 1 || len(out.Kernels) != 1 || out.Kernels[0].ID != resp.Kernel {
		t.Fatalf("listing after compile: %s", raw)
	}
	if out.Kernels[0].Name != "userk" || out.Kernels[0].Arity != resp.Arity || out.Kernels[0].CreatedAt.IsZero() {
		t.Fatalf("listing entry metadata: %+v", out.Kernels[0])
	}

	// The plain listing still serves the built-in menu.
	code, raw = get(t, ts, "/v1/kernels")
	if code != http.StatusOK || !bytes.Contains(raw, []byte(`"k1"`)) {
		t.Fatalf("built-in listing: %d: %s", code, raw)
	}
}

func TestCompileRejectionsHTTP(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})

	// Malformed JSON: the plain 400 body (no structured code).
	code, _, raw := post(t, ts, "/v1/compile", `{"source":`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d: %s", code, raw)
	}

	// A body over the transport bound: 413 before the registry runs.
	huge := compileBody(t, kernelreg.CompileRequest{Source: strings.Repeat("x", 3*(64<<10))})
	code, _, raw = post(t, ts, "/v1/compile", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d: %s", code, raw)
	}

	// Unparseable source: structured 400 parse_error.
	code, _, raw = post(t, ts, "/v1/compile", compileBody(t, kernelreg.CompileRequest{Source: "PROGRAM x\n  garbage\nEND\n"}))
	var eb ErrorBody
	if code != http.StatusBadRequest || json.Unmarshal(raw, &eb) != nil || eb.Code != kernelreg.CodeParseError {
		t.Fatalf("parse error: %d: %s", code, raw)
	}
}

func mustCompile(t *testing.T, ts *httptest.Server, req kernelreg.CompileRequest) kernelreg.CompileResponse {
	t.Helper()
	code, _, raw := post(t, ts, "/v1/compile", compileBody(t, req))
	if code != http.StatusOK {
		t.Fatalf("compile: %d: %s", code, raw)
	}
	var resp kernelreg.CompileResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}
