package serve

import (
	"container/list"
	"sync"
)

// lruCache is the bounded result cache: canonical point key → encoded
// response body. Bodies are immutable once stored, so get returns the
// cached slice directly; callers must not mutate it.
type lruCache struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// get returns the cached body for key, refreshing its recency.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[key]
	if el == nil {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// add stores body under key, evicting the least recently used entries
// beyond capacity. Re-adding an existing key refreshes it.
func (c *lruCache) add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[key]; el != nil {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		delete(c.entries, back.Value.(*lruEntry).key)
		c.order.Remove(back)
	}
}

// len returns the number of cached bodies.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
