// Package serve is the serving subsystem of the reproduction: a
// batching, caching HTTP classification service over the sweep/replay
// engines. The paper's machinery — classify every access of a
// Livermore kernel under a machine configuration — becomes a long-lived
// daemon (cmd/lfksimd) instead of only a CLI, the way PGAS runtimes
// expose partitioned memory behind a uniform service interface.
//
// Endpoints:
//
//	POST /v1/classify   one grid point → PointResult
//	POST /v1/sweep      a parameter grid → SweepResult (grid order)
//	GET  /v1/kernels    the kernel registry
//	GET  /healthz       liveness + build/version details
//	GET  /metrics       obs registry snapshot (JSON; ?format=prom for
//	                    Prometheus text exposition)
//	GET  /debug/trace   recent request traces (?id= for one span tree)
//	GET  /debug/pprof/  net/http/pprof (plus /debug/vars expvar)
//
// The hot path exploits the existing engines end-to-end: requests are
// validated into canonical configurations (api.go), deduplicated
// against identical in-flight work, answered from a bounded LRU of
// encoded bodies, and executed on a shared worker pool that reuses
// reference-stream captures across requests keyed by (kernel, N)
// (engine.go). Production behaviors are part of the subsystem:
// admission control (bounded in-flight requests → 429 + Retry-After),
// per-request deadlines (504), graceful shutdown that drains in-flight
// work, and full obs instrumentation — with determinism preserved:
// identical requests yield bit-identical JSON bodies. See
// docs/SERVING.md.
//
// Every classify/sweep request is request-scoped traced: the caller's
// X-Request-ID (or a generated one) is echoed back, the request rides
// an obs/trace.Trace recording per-stage spans (admission wait, cache
// lookup, singleflight wait, capture, replay, encode), recent traces
// are retained in a bounded ring behind GET /debug/trace, and each
// request emits one JSON access-log line. The same stages feed the
// serve.stage.* histograms for server-side percentiles. See
// docs/OBSERVABILITY.md.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Server is the HTTP face of the classification service. Create one
// with New, mount Handler on any http.Server, and Close it (after
// http.Server.Shutdown) to drain the engine.
type Server struct {
	eng    *Engine
	reg    *obs.Registry
	mux    *http.ServeMux
	ring   *trace.Ring
	alog   *accessLogger
	health []byte

	cClassify, cSweep, cCompile, cBad, cDeadline *obs.Counter
	hClassify, hSweep, hCompileReq               *obs.Histogram
}

// New builds a Server (and its Engine) from opts.
func New(opts Options) *Server {
	eng := newEngine(opts)
	reg := eng.reg
	s := &Server{
		eng:         eng,
		reg:         reg,
		mux:         http.NewServeMux(),
		ring:        trace.NewRing(opts.TraceRingEntries),
		alog:        newAccessLogger(opts.AccessLog),
		health:      healthBody(),
		cClassify:   reg.Counter(MetricClassifyRequests),
		cSweep:      reg.Counter(MetricSweepRequests),
		cCompile:    reg.Counter(MetricCompileRequests),
		cBad:        reg.Counter(MetricBadRequests),
		cDeadline:   reg.Counter(MetricDeadlineExceeded),
		hClassify:   reg.Histogram(MetricClassifyLatencyUS, obs.MicrosBuckets),
		hSweep:      reg.Histogram(MetricSweepLatencyUS, obs.MicrosBuckets),
		hCompileReq: reg.Histogram(MetricCompileLatencyUS, obs.MicrosBuckets),
	}
	reg.Gauge(MetricBuildInfo).Set(1)
	s.mux.HandleFunc("POST /v1/classify", s.traced("/v1/classify", s.handleClassify))
	s.mux.HandleFunc("POST /v1/sweep", s.traced("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("POST /v1/compile", s.traced("/v1/compile", s.handleCompile))
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	AttachDebug(s.mux, reg)
	return s
}

// Handler returns the server's route tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the execution core (tests, embedders).
func (s *Server) Engine() *Engine { return s.eng }

// Registry exposes the compiled-kernel registry (always non-nil). The
// cluster router shares it into its routing options so compiled ids
// resolve for group-key derivation.
func (s *Server) Registry() *kernelreg.Registry { return s.eng.Registry() }

// Close drains the engine: call it after http.Server.Shutdown has
// stopped new connections; it blocks until in-flight work finishes.
func (s *Server) Close() { s.eng.Close() }

// AttachDebug registers the pprof and expvar debug handlers on mux and
// publishes reg under the "repro" expvar name. Shared by the daemon
// and lfksim's -pprof flag so neither touches http.DefaultServeMux —
// debug endpoints live and die with the mux's own server.
func AttachDebug(mux *http.ServeMux, reg *obs.Registry) {
	obs.PublishExpvar("repro", reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// writeJSON writes body with the canonical headers. body is already
// encoded: the determinism contract forbids re-marshalling.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, err error) {
	body, _ := json.Marshal(ErrorBody{Error: err.Error()})
	writeJSON(w, status, body)
}

// decode strictly parses a request body: unknown fields are rejected
// so a typoed knob fails loudly instead of silently selecting a
// default.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing request body: %w", err)
	}
	return nil
}

// finishErr maps an execution error onto its status code and counters.
// Status codes separate the retryable from the terminal for upstream
// routers: 503 (+ Retry-After) means "this replica is draining — the
// identical request succeeds elsewhere", while 504 means the work
// itself overran its deadline and would overrun it again on a peer.
func (s *Server) finishErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if s.eng.Closing() {
			// The deadline fired because Close stopped the pool under
			// this request, not because the work was too slow. Report
			// drain (retryable), not deadline (terminal).
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("engine draining: %w", err))
			return
		}
		s.cDeadline.Inc()
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// rejectErr handles admission failures: 429 with Retry-After under
// overload, 503 with Retry-After during shutdown.
func rejectErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, err)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.cClassify.Inc()
	start := time.Now()
	defer func() { s.hClassify.Observe(time.Since(start).Microseconds()) }()
	tr := trace.FromContext(r.Context())

	sp := tr.Start("decode")
	var req ClassifyRequest
	err := decode(r, &req)
	var p point
	if err == nil {
		p, err = canonPoint(req, s.eng.opts.limits())
	}
	s.eng.hDecode.Observe(sp.End().Microseconds())
	if err != nil {
		s.cBad.Inc()
		// Unknown compiled ("u:") kernels carry a structured 404 +
		// unknown_kernel code; every other validation failure keeps its
		// pre-existing 400 body bytes.
		writeStructured(w, http.StatusBadRequest, err)
		return
	}
	asp := tr.Start("admit_wait")
	release, err := s.eng.admit()
	s.eng.hAdmit.Observe(asp.End().Microseconds())
	if err != nil {
		rejectErr(w, err)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.eng.deadline(req.DeadlineMS, p.cfg.NPE, p.n))
	defer cancel()
	body, err := s.eng.Do(ctx, p)
	if err != nil {
		s.finishErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.cSweep.Inc()
	start := time.Now()
	defer func() { s.hSweep.Observe(time.Since(start).Microseconds()) }()
	tr := trace.FromContext(r.Context())

	sp := tr.Start("decode")
	var req SweepRequest
	err := decode(r, &req)
	var pts []point
	if err == nil {
		pts, err = canonSweep(req, s.eng.opts.limits())
	}
	s.eng.hDecode.Observe(sp.End().Microseconds())
	if err != nil {
		s.cBad.Inc()
		writeStructured(w, http.StatusBadRequest, err)
		return
	}
	asp := tr.Start("admit_wait")
	release, err := s.eng.admit()
	s.eng.hAdmit.Observe(asp.End().Microseconds())
	if err != nil {
		rejectErr(w, err)
		return
	}
	defer release()

	maxNPE, maxN := 1, 1
	for _, p := range pts {
		maxNPE = max(maxNPE, p.cfg.NPE)
		maxN = max(maxN, p.n)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.eng.deadline(req.DeadlineMS, maxNPE, maxN))
	defer cancel()

	// One batch pass per capture group: grid-order results, lowest-index
	// error, the work bounded by the engine's own pool. Each point still
	// passes through the same cache/dedup path as /v1/classify, so sweep
	// and classify bodies are interchangeable bit-for-bit.
	bodies, err := s.eng.DoSweep(ctx, pts)
	if err != nil {
		s.finishErr(w, err)
		return
	}
	body, err := json.Marshal(&SweepResult{Count: len(bodies), Points: bodies})
	if err != nil {
		s.finishErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("compiled") == "1" {
		s.handleCompiledKernels(w)
		return
	}
	paper := map[string]bool{}
	for _, k := range loops.PaperSet() {
		paper[k.Key] = true
	}
	infos := make([]KernelInfo, 0, len(loops.All()))
	for _, k := range loops.All() {
		infos = append(infos, KernelInfo{
			Key:      k.Key,
			Name:     k.Name,
			Class:    k.Class.String(),
			DefaultN: k.DefaultN,
			MinN:     k.MinN,
			Paper:    paper[k.Key],
		})
	}
	body, err := json.Marshal(infos)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.health)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if wantsProm(r) {
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, s.reg.Snapshot(), metricHelp); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes())
		return
	}
	body, err := json.MarshalIndent(s.reg.Snapshot(), "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// wantsProm selects the /metrics exposition: an explicit
// ?format=prom|json parameter wins; otherwise an Accept header asking
// for text/plain or openmetrics (and not application/json) selects the
// Prometheus text format. JSON is the default.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// metricHelp supplies # HELP strings for the Prometheus exposition,
// keyed by registry name. Intentionally partial: names without an
// entry still expose with # TYPE only.
var metricHelp = map[string]string{
	MetricBuildInfo:          "constant 1 while the process serves; version details on GET /healthz",
	MetricClassifyRequests:   "POST /v1/classify requests received",
	MetricSweepRequests:      "POST /v1/sweep requests received",
	MetricRejected:           "requests refused by admission control (429)",
	MetricBadRequests:        "requests rejected by validation (400)",
	MetricDeadlineExceeded:   "requests that exceeded their deadline (504)",
	MetricCacheHits:          "points answered from the result cache",
	MetricCacheMisses:        "points that executed or joined an in-flight execution",
	MetricDedupWaits:         "points that joined an identical in-flight point",
	MetricPointsExecuted:     "simulator/replayer point executions",
	MetricStreamCaptures:     "reference-stream captures performed",
	MetricStreamHits:         "captures avoided by the stream cache",
	MetricQueueDepth:         "tasks queued for the worker pool",
	MetricInflight:           "admitted in-flight requests",
	MetricClassifyLatencyUS:  "end-to-end /v1/classify latency (microseconds)",
	MetricSweepLatencyUS:     "end-to-end /v1/sweep latency (microseconds)",
	MetricStageDecodeUS:      "stage: body decode + canonicalization (microseconds)",
	MetricStageAdmitWaitUS:   "stage: admission-slot acquisition (microseconds)",
	MetricStageCacheLookupUS: "stage: result-cache lookup (microseconds)",
	MetricStageFlightWaitUS:  "stage: enqueue + singleflight wait (microseconds)",
	MetricStageCaptureUS:     "stage: reference-stream fetch/capture (microseconds)",
	MetricStageReplayUS:      "stage: replayer pass (microseconds)",
	MetricStageDirectUS:      "stage: direct simulator run (microseconds)",
	MetricStageEncodeUS:      "stage: result encoding (microseconds)",
	MetricCompileRequests:    "POST /v1/compile requests received",
	MetricCompileLatencyUS:   "end-to-end /v1/compile latency (microseconds)",
	MetricStageCompileUS:     "stage: registry compile pipeline (microseconds)",

	kernelreg.MetricCompiles:      "kernel compile attempts",
	kernelreg.MetricCompileHits:   "recompiles of an already-registered kernel id",
	kernelreg.MetricCompileErrors: "compiles rejected with a structured 4xx",
	kernelreg.MetricEvictions:     "compiled kernels evicted under capacity pressure",
	kernelreg.MetricQuotaRejects:  "compiles rejected by the per-tenant quota",
	kernelreg.MetricResolveMisses: "classify/sweep lookups of unknown compiled ids",
	kernelreg.MetricEntries:       "registered compiled kernels",
}
