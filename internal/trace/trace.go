// Package trace records the classified access stream of a simulated
// run (one event per array access, in program order), serializes it in
// a compact binary format, and replays the read stream through
// alternative cache configurations — trace-driven cache simulation, the
// standard methodology of the era the paper belongs to.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/stats"
)

// Event is one recorded access.
type Event struct {
	PE    int32
	Kind  stats.Access
	Array int32
	Lin   int64
	Page  int64
}

// Buffer accumulates events in memory; it implements sim.Tracer.
type Buffer struct {
	Events []Event
}

// Event implements the simulator's Tracer interface.
func (b *Buffer) Event(pe int, kind stats.Access, array, lin, page int) {
	b.Events = append(b.Events, Event{
		PE: int32(pe), Kind: kind, Array: int32(array),
		Lin: int64(lin), Page: int64(page),
	})
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.Events) }

// Counters recomputes the access counters implied by the trace.
func (b *Buffer) Counters() stats.Counters {
	var c stats.Counters
	for _, ev := range b.Events {
		c.Count(ev.Kind)
	}
	return c
}

// Binary format: magic, version, event count, then fixed-width records.
const (
	magic   = uint32(0x53415452) // "SATR"
	version = uint16(1)
)

// Write serializes the trace.
func (b *Buffer) Write(w io.Writer) error {
	hdr := struct {
		Magic   uint32
		Version uint16
		_       uint16
		Count   uint64
	}{Magic: magic, Version: version, Count: uint64(len(b.Events))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i := range b.Events {
		rec := record{
			PE: b.Events[i].PE, Kind: uint8(b.Events[i].Kind),
			Array: b.Events[i].Array, Lin: b.Events[i].Lin, Page: b.Events[i].Page,
		}
		if err := binary.Write(w, binary.LittleEndian, rec); err != nil {
			return fmt.Errorf("trace: writing event %d: %w", i, err)
		}
	}
	return nil
}

type record struct {
	PE    int32
	Kind  uint8
	_     [3]byte
	Array int32
	Lin   int64
	Page  int64
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Buffer, error) {
	var hdr struct {
		Magic   uint32
		Version uint16
		_       uint16
		Count   uint64
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr.Magic != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", hdr.Magic)
	}
	if hdr.Version != version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	if hdr.Count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible event count %d", hdr.Count)
	}
	b := &Buffer{Events: make([]Event, hdr.Count)}
	for i := range b.Events {
		var rec record
		if err := binary.Read(r, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		b.Events[i] = Event{
			PE: rec.PE, Kind: stats.Access(rec.Kind),
			Array: rec.Array, Lin: rec.Lin, Page: rec.Page,
		}
	}
	return b, nil
}

// ReplayCache re-classifies the trace's non-local reads under a
// different per-PE cache configuration, without re-running the kernel.
// Local reads and writes keep their class (ownership is a property of
// the layout, which the trace was recorded under); every read the
// original run classified as cached or remote is replayed through the
// new caches. It returns the recomputed counters.
func ReplayCache(b *Buffer, npe, cacheElems, pageSize int, policy cache.Policy) (stats.Counters, error) {
	if npe <= 0 {
		return stats.Counters{}, fmt.Errorf("trace: NPE must be positive, got %d", npe)
	}
	caches := make([]*cache.Cache, npe)
	for pe := range caches {
		c, err := cache.New(cacheElems, pageSize, policy)
		if err != nil {
			return stats.Counters{}, err
		}
		caches[pe] = c
	}
	var out stats.Counters
	for _, ev := range b.Events {
		switch ev.Kind {
		case stats.Write, stats.LocalRead:
			out.Count(ev.Kind)
		case stats.CachedRead, stats.RemoteRead:
			if int(ev.PE) >= npe {
				return stats.Counters{}, fmt.Errorf("trace: event PE %d out of range for %d PEs", ev.PE, npe)
			}
			key := cache.Key{Array: int(ev.Array), Page: int(ev.Page)}
			off := int(ev.Lin) % pageSize
			if _, o := caches[ev.PE].Lookup(key, off); o == cache.Hit {
				out.CachedReads++
			} else {
				out.RemoteReads++
				caches[ev.PE].Insert(key, make([]float64, pageSize), nil)
			}
		}
	}
	return out, nil
}

// PageJumpStats measures how often consecutive reads by the same PE
// land on a different page of the same array — the signature that
// separates skewed (rare jumps), cyclic (regular jumps over a fixed
// set) and random (constant jumping) distributions.
type PageJumpStats struct {
	Reads       int64
	Jumps       int64   // consecutive same-array reads on different pages
	JumpPercent float64 // 100 * Jumps / max(1, comparable pairs)
	DistinctPg  int     // distinct (array, page) pairs read
}

// Jumpiness computes PageJumpStats over the trace. The last page seen
// is tracked per (PE, array) stream so interleaved reads of several
// arrays do not mask each stream's behaviour.
func Jumpiness(b *Buffer) PageJumpStats {
	type streamKey struct {
		pe    int32
		array int32
	}
	lastPage := map[streamKey]int64{}
	distinct := map[[2]int64]bool{}
	var st PageJumpStats
	var pairs int64
	for _, ev := range b.Events {
		if ev.Kind == stats.Write {
			continue
		}
		st.Reads++
		distinct[[2]int64{int64(ev.Array), ev.Page}] = true
		key := streamKey{pe: ev.PE, array: ev.Array}
		if prev, ok := lastPage[key]; ok {
			pairs++
			if prev != ev.Page {
				st.Jumps++
			}
		}
		lastPage[key] = ev.Page
	}
	if pairs > 0 {
		st.JumpPercent = 100 * float64(st.Jumps) / float64(pairs)
	}
	st.DistinctPg = len(distinct)
	return st
}
