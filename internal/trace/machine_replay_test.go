package trace

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/sim"
)

// These tests close the loop between the three accounting layers: a
// trace recorded by the counting simulator, replayed through
// ReplayCache, must reproduce the counters of the *machine* model —
// the goroutine-per-PE execution with real message exchanges — not
// just the analytic simulator that produced the trace.
//
// The kernel is k1 (Hydro Fragment): its read arrays (y, z) are fully
// defined at initialization, so every page snapshot the machine
// fetches is complete and the cached/remote split is deterministic
// and schedule-independent. Kernels that read arrays still being
// produced can see genuine partial fills on the machine, where the
// split legitimately diverges from any replay (see
// TestAccountingConsistentWithCountingSimulator in internal/machine).

func machineRun(t *testing.T, key string, n int, cfg machine.Config) *machine.Result {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(k, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReplayMatchesMachineNoCache: with caching disabled everywhere,
// a trace replay and the machine model agree exactly on all four
// counters — writes, local, cached (zero), remote.
func TestReplayMatchesMachineNoCache(t *testing.T) {
	for _, npe := range []int{4, 8} {
		buf, _ := recordRun(t, "k1", 500, sim.NoCacheConfig(npe, 32))

		mcfg := machine.DefaultConfig(npe, 32)
		mcfg.CacheElems = 0
		mres := machineRun(t, "k1", 500, mcfg)

		replayed, err := ReplayCache(buf, npe, 0, 32, cache.LRU)
		if err != nil {
			t.Fatal(err)
		}
		if replayed != mres.Totals {
			t.Errorf("npe=%d: replay %+v != machine %+v", npe, replayed, mres.Totals)
		}
		if replayed.RemoteReads == 0 {
			t.Errorf("npe=%d: no remote reads; test exercises nothing", npe)
		}
	}
}

// TestReplayMatchesMachineCached: replaying the trace under the
// machine's cache configuration (same per-PE capacity, page size and
// policy) reproduces the machine's cached/remote split exactly.
// Caches are private per PE and each PE's access stream is the same
// deterministic iteration order in the simulator, the replay and the
// machine, so LRU behaves identically in all three.
func TestReplayMatchesMachineCached(t *testing.T) {
	const npe, ps, cacheElems = 4, 32, 256

	buf, _ := recordRun(t, "k1", 500, sim.PaperConfig(npe, ps))
	mres := machineRun(t, "k1", 500, machine.DefaultConfig(npe, ps))

	replayed, err := ReplayCache(buf, npe, cacheElems, ps, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != mres.Totals {
		t.Errorf("replay %+v != machine %+v", replayed, mres.Totals)
	}
	if replayed.CachedReads == 0 {
		t.Error("no cached reads; test exercises nothing")
	}
}
