package trace

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/sim"
	"repro/internal/stats"
)

func recordRun(t *testing.T, key string, n int, cfg sim.Config) (*Buffer, *sim.Result) {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := &Buffer{}
	cfg.Tracer = buf
	res, err := sim.Run(k, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return buf, res
}

func TestTraceMatchesCounters(t *testing.T) {
	buf, res := recordRun(t, "k1", 500, sim.PaperConfig(8, 32))
	if buf.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if got := buf.Counters(); got != res.Totals {
		t.Errorf("trace counters %+v != run totals %+v", got, res.Totals)
	}
}

func TestRoundTripSerialization(t *testing.T) {
	buf, _ := recordRun(t, "k5", 300, sim.PaperConfig(4, 32))
	var bb bytes.Buffer
	if err := buf.Write(&bb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&bb)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != buf.Len() {
		t.Fatalf("length changed: %d -> %d", buf.Len(), got.Len())
	}
	for i := range buf.Events {
		if got.Events[i] != buf.Events[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, buf.Events[i], got.Events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Correct magic, wrong version.
	var bb bytes.Buffer
	(&Buffer{}).Write(&bb)
	data := bb.Bytes()
	data[4] = 99 // version byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
	// Truncated events.
	var bb2 bytes.Buffer
	buf := &Buffer{}
	buf.Event(0, stats.Write, 0, 1, 0)
	buf.Write(&bb2)
	trunc := bb2.Bytes()[:bb2.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestReplayCacheReproducesOriginal(t *testing.T) {
	// Replaying under the same cache configuration must reproduce the
	// original cached/remote split exactly.
	cfg := sim.PaperConfig(8, 32)
	buf, res := recordRun(t, "k2", 512, cfg)
	replayed, err := ReplayCache(buf, 8, 256, 32, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != res.Totals {
		t.Errorf("replay %+v != original %+v", replayed, res.Totals)
	}
}

func TestReplayCacheBiggerCacheFewerRemote(t *testing.T) {
	buf, res := recordRun(t, "k6", 200, sim.PaperConfig(8, 32))
	bigger, err := ReplayCache(buf, 8, 4096, 32, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.RemoteReads >= res.Totals.RemoteReads {
		t.Errorf("bigger cache should cut remote reads: %d -> %d",
			res.Totals.RemoteReads, bigger.RemoteReads)
	}
	if bigger.Reads() != res.Totals.Reads() {
		t.Errorf("replay changed total reads: %d vs %d", bigger.Reads(), res.Totals.Reads())
	}
	// No cache at all: every non-local read is remote.
	none, err := ReplayCache(buf, 8, 0, 32, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if none.CachedReads != 0 {
		t.Errorf("cacheless replay has %d cached reads", none.CachedReads)
	}
}

func TestReplayValidation(t *testing.T) {
	buf := &Buffer{}
	buf.Event(5, stats.RemoteRead, 0, 0, 0)
	if _, err := ReplayCache(buf, 2, 256, 32, cache.LRU); err == nil {
		t.Error("out-of-range PE accepted")
	}
	if _, err := ReplayCache(buf, 0, 256, 32, cache.LRU); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := ReplayCache(buf, 8, -1, 32, cache.LRU); err == nil {
		t.Error("negative cache accepted")
	}
}

func TestJumpinessSeparatesClasses(t *testing.T) {
	// The skewed Hydro Fragment hugs its pages; the random GLR jumps
	// constantly. Jumpiness should separate them by a wide margin.
	sd, _ := recordRun(t, "k1", 500, sim.NoCacheConfig(8, 32))
	rd, _ := recordRun(t, "k6", 200, sim.NoCacheConfig(8, 32))
	sdJ := Jumpiness(sd)
	rdJ := Jumpiness(rd)
	if sdJ.Reads == 0 || rdJ.Reads == 0 {
		t.Fatal("no reads in traces")
	}
	if sdJ.JumpPercent >= rdJ.JumpPercent/2 {
		t.Errorf("jumpiness failed to separate SD (%.1f%%) from RD (%.1f%%)",
			sdJ.JumpPercent, rdJ.JumpPercent)
	}
	if sdJ.DistinctPg == 0 || rdJ.DistinctPg == 0 {
		t.Error("distinct page counts missing")
	}
}

func TestJumpinessEmptyTrace(t *testing.T) {
	st := Jumpiness(&Buffer{})
	if st.Reads != 0 || st.Jumps != 0 || st.JumpPercent != 0 {
		t.Errorf("empty trace stats = %+v", st)
	}
}
