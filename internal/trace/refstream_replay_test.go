package trace

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/refstream"
	"repro/internal/sim"
)

// The repository now has two replay engines over captured access
// streams: ReplayCache (this package) re-classifies a recorded trace's
// non-local reads through fresh caches of the traced configuration,
// and refstream replays the raw reference stream under arbitrary
// configurations. When pointed at the same (kernel, n, config) they
// measure the same machine, so their counters must agree with each
// other and with the direct run that produced the trace.
func TestReplayCacheAgreesWithRefstream(t *testing.T) {
	cases := []struct {
		key string
		n   int
		cfg sim.Config
	}{
		{"k1", 1000, sim.PaperConfig(8, 32)},
		{"k2", 1024, sim.PaperConfig(16, 32)},
		{"k18", 200, sim.PaperConfig(8, 64)},
		{"k24", 300, sim.PaperConfig(4, 32)}, // reduction-heavy
		{"k6", 200, sim.NoCacheConfig(16, 32)},
	}
	for _, c := range cases {
		k, err := loops.ByKey(c.key)
		if err != nil {
			t.Fatal(err)
		}

		// Direct traced run: the ground truth and the trace source.
		buf := &Buffer{}
		cfg := c.cfg
		cfg.Tracer = buf
		direct, err := sim.Run(k, c.n, cfg)
		if err != nil {
			t.Fatalf("%s: traced run: %v", c.key, err)
		}

		// Trace-driven cache replay at the traced configuration.
		fromTrace, err := ReplayCache(buf, c.cfg.NPE, c.cfg.CacheElems, c.cfg.PageSize, c.cfg.Policy)
		if err != nil {
			t.Fatalf("%s: ReplayCache: %v", c.key, err)
		}

		// Reference-stream replay at the same configuration.
		st, err := refstream.Capture(k, c.n)
		if err != nil {
			t.Fatalf("%s: capture: %v", c.key, err)
		}
		fromStream, err := refstream.NewReplayer().Run(st, c.cfg)
		if err != nil {
			t.Fatalf("%s: refstream replay: %v", c.key, err)
		}

		if got, want := fromStream.Totals, direct.Totals; got != want {
			t.Errorf("%s: refstream totals %v != direct totals %v", c.key, got, want)
		}
		if got, want := fromTrace, direct.Totals; got != want {
			t.Errorf("%s: ReplayCache totals %v != direct totals %v", c.key, got, want)
		}
		if got, want := fromTrace, fromStream.Totals; got != want {
			t.Errorf("%s: ReplayCache totals %v != refstream totals %v", c.key, got, want)
		}
		// The stream replay additionally reproduces the per-PE split,
		// which the flat trace counters cannot express.
		if !reflect.DeepEqual(fromStream.PerPE, direct.PerPE) {
			t.Errorf("%s: refstream per-PE counters diverge from direct run", c.key)
		}
		if !reflect.DeepEqual(fromStream.Cache, direct.Cache) {
			t.Errorf("%s: refstream cache stats diverge from direct run", c.key)
		}
	}
}

// TestReplayCacheAlternativeConfigs cross-checks the two replay engines
// on *re-configured* cache parameters: ReplayCache holds the layout
// fixed (NPE and page size of the trace) while varying cache capacity
// and policy — exactly the subspace where refstream replay must agree
// with it, since both then model the same reference stream through the
// same cache geometry.
func TestReplayCacheAlternativeConfigs(t *testing.T) {
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	const n, npe, ps = 1024, 8, 32
	base := sim.PaperConfig(npe, ps)
	buf := &Buffer{}
	traced := base
	traced.Tracer = buf
	if _, err := sim.Run(k, n, traced); err != nil {
		t.Fatal(err)
	}
	st, err := refstream.Capture(k, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range []int{0, 64, 256, 1024} {
		for _, pol := range []cache.Policy{cache.LRU, cache.FIFO} {
			fromTrace, err := ReplayCache(buf, npe, ce, ps, pol)
			if err != nil {
				t.Fatalf("ce=%d %s: %v", ce, pol, err)
			}
			cfg := base
			cfg.CacheElems = ce
			cfg.Policy = pol
			fromStream, err := refstream.NewReplayer().Run(st, cfg)
			if err != nil {
				t.Fatalf("ce=%d %s: %v", ce, pol, err)
			}
			if fromTrace != fromStream.Totals {
				t.Errorf("ce=%d %s: ReplayCache %v != refstream %v", ce, pol, fromTrace, fromStream.Totals)
			}
		}
	}
}
