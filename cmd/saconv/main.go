// Command saconv demonstrates the paper's §5 automatic conversion
// tool: it takes conventional-Fortran-style sample programs (in the
// affine loop IR), reports their single-assignment violations, and —
// with -convert — rewrites them to single-assignment form and verifies
// the result on the sequential reference engine.
//
// Without -convert, saconv is a checker: a program with SA violations
// prints its diagnostics to stderr and exits non-zero, so scripts can
// gate on "is this already single-assignment?" without parsing output.
//
// Usage:
//
//	saconv            check every built-in sample (exit 1: violations)
//	saconv -convert   convert every built-in sample to SA form
//	saconv -p inplace -convert
//	                  convert one sample by name
//	saconv -f x.loop  check a program from a file (see internal/ir
//	                  parser syntax; examples under testdata/)
//	saconv -json      emit the POST /v1/compile wire encoding, one
//	                  JSON object per program (internal/kernelreg)
//	saconv -list      list samples
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/convert"
	"repro/internal/ir"
	"repro/internal/kernelreg"
	"repro/internal/loops"
	"repro/internal/serve"
)

func main() {
	var (
		name      = flag.String("p", "", "sample program to process (default: all)")
		file      = flag.String("f", "", "parse a .loop source file instead of a sample")
		list      = flag.Bool("list", false, "list sample programs")
		n         = flag.Int("n", 32, "problem size for verification (default_n in -json mode)")
		doConvert = flag.Bool("convert", false, "rewrite violating programs to single-assignment form (off: check only, violations are fatal)")
		asJSON    = flag.Bool("json", false, "emit the POST /v1/compile wire encoding, one JSON object per program")
	)
	flag.Parse()

	if *list {
		for _, p := range ir.Samples() {
			viol := len(ir.Violations(p.CheckSA()))
			fmt.Printf("  %-14s %d SA violation(s)\n", p.Name, viol)
		}
		return
	}

	var programs []*ir.Program
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saconv:", err)
			os.Exit(1)
		}
		p, err := ir.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "saconv:", err)
			os.Exit(1)
		}
		programs = append(programs, p)
	case *name != "":
		for _, p := range ir.Samples() {
			if p.Name == *name {
				programs = append(programs, p)
			}
		}
		if len(programs) == 0 {
			fmt.Fprintf(os.Stderr, "saconv: unknown sample %q\n", *name)
			os.Exit(1)
		}
	default:
		programs = ir.Samples()
	}

	// -json shares the /v1/compile pipeline and wire encoding exactly:
	// the same registry Compile() the daemon calls, the same response
	// and error body marshaling, so `saconv -json` output can be diffed
	// against a daemon's HTTP responses byte for byte.
	var jreg *kernelreg.Registry
	if *asJSON {
		jreg = kernelreg.New(kernelreg.Limits{}, nil)
	}

	failed := false
	for _, p := range programs {
		var err error
		if *asJSON {
			err = compileJSON(jreg, p, *doConvert, *n)
		} else if *doConvert {
			err = convertOne(p, *n)
		} else {
			err = checkOne(p)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "saconv:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkOne reports a program's SA diagnostics without rewriting it.
// Violations go to stderr and make the run fail.
func checkOne(p *ir.Program) error {
	fmt.Printf("==== %s ====\n", p.Name)
	fmt.Println(p)
	diags := p.CheckSA()
	if len(diags) == 0 {
		fmt.Println("single-assignment clean")
		fmt.Println()
		return nil
	}
	for _, d := range diags {
		fmt.Println(" ", d)
	}
	fmt.Println()
	viol := ir.Violations(diags)
	if len(viol) == 0 {
		return nil
	}
	for _, d := range viol {
		fmt.Fprintf(os.Stderr, "saconv: %s: %s\n", p.Name, d)
	}
	return fmt.Errorf("%s: %d single-assignment violation(s); rerun with -convert to rewrite", p.Name, len(viol))
}

// compileJSON runs the registry compile pipeline and prints its wire
// encoding: the CompileResponse on success, the serve error body (the
// same struct POST /v1/compile marshals) on rejection.
func compileJSON(reg *kernelreg.Registry, p *ir.Program, doConvert bool, n int) error {
	resp, err := reg.Compile(kernelreg.CompileRequest{
		Source:   p.String() + "END\n",
		Convert:  doConvert,
		DefaultN: n,
	})
	if err != nil {
		eb := serve.ErrorBody{Error: err.Error()}
		if ke, ok := err.(*kernelreg.Error); ok {
			eb.Error = ke.Msg
			eb.Code = ke.Code
			eb.Diagnostics = ke.Diagnostics
		}
		body, merr := json.Marshal(eb)
		if merr != nil {
			return merr
		}
		fmt.Println(string(body))
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		return merr
	}
	fmt.Println(string(body))
	return nil
}

func convertOne(p *ir.Program, n int) error {
	fmt.Printf("==== %s ====\n", p.Name)
	fmt.Println(p)
	diags := p.CheckSA()
	if len(diags) == 0 {
		fmt.Println("already single-assignment; nothing to do")
	}
	for _, d := range diags {
		fmt.Println(" ", d)
	}
	res, err := convert.ToSA(p, n)
	if err != nil {
		return err
	}
	fmt.Println("\nconverted:")
	fmt.Println(res.Program)
	for _, rw := range res.Rewrites {
		fmt.Printf("  rewrite: %-17s %s -> %s (%s)\n", rw.Kind, rw.Array, rw.NewArray, rw.Detail)
	}
	for _, note := range res.Notes {
		fmt.Printf("  note: %s\n", note)
	}
	fmt.Printf("  extra storage: %d elements at n=%d\n", res.ExtraElems, n)

	// Verification: the converted program must run clean.
	k, err := res.Program.Kernel(n)
	if err != nil {
		return err
	}
	if _, err := loops.RunSeq(k, n); err != nil {
		return fmt.Errorf("converted program still fails: %w", err)
	}
	fmt.Println("  verification: converted program runs single-assignment clean")
	fmt.Println()
	return nil
}
