// Command saconv demonstrates the paper's §5 automatic conversion
// tool: it takes conventional-Fortran-style sample programs (in the
// affine loop IR), reports their single-assignment violations, rewrites
// them to single-assignment form, and verifies the result by running
// it on the sequential reference engine.
//
// Usage:
//
//	saconv            convert every built-in sample
//	saconv -p inplace convert one sample by name
//	saconv -f x.loop  convert a program from a file (see internal/ir
//	                  parser syntax; examples under testdata/)
//	saconv -list      list samples
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/convert"
	"repro/internal/ir"
	"repro/internal/loops"
)

func main() {
	var (
		name = flag.String("p", "", "sample program to convert (default: all)")
		file = flag.String("f", "", "parse and convert a .loop source file")
		list = flag.Bool("list", false, "list sample programs")
		n    = flag.Int("n", 32, "problem size for verification")
	)
	flag.Parse()

	if *list {
		for _, p := range ir.Samples() {
			viol := len(ir.Violations(p.CheckSA()))
			fmt.Printf("  %-14s %d SA violation(s)\n", p.Name, viol)
		}
		return
	}

	var programs []*ir.Program
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saconv:", err)
			os.Exit(1)
		}
		p, err := ir.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "saconv:", err)
			os.Exit(1)
		}
		programs = append(programs, p)
	case *name != "":
		for _, p := range ir.Samples() {
			if p.Name == *name {
				programs = append(programs, p)
			}
		}
		if len(programs) == 0 {
			fmt.Fprintf(os.Stderr, "saconv: unknown sample %q\n", *name)
			os.Exit(1)
		}
	default:
		programs = ir.Samples()
	}

	for _, p := range programs {
		if err := convertOne(p, *n); err != nil {
			fmt.Fprintln(os.Stderr, "saconv:", err)
			os.Exit(1)
		}
	}
}

func convertOne(p *ir.Program, n int) error {
	fmt.Printf("==== %s ====\n", p.Name)
	fmt.Println(p)
	diags := p.CheckSA()
	if len(diags) == 0 {
		fmt.Println("already single-assignment; nothing to do")
	}
	for _, d := range diags {
		fmt.Println(" ", d)
	}
	res, err := convert.ToSA(p, n)
	if err != nil {
		return err
	}
	fmt.Println("\nconverted:")
	fmt.Println(res.Program)
	for _, rw := range res.Rewrites {
		fmt.Printf("  rewrite: %-17s %s -> %s (%s)\n", rw.Kind, rw.Array, rw.NewArray, rw.Detail)
	}
	for _, note := range res.Notes {
		fmt.Printf("  note: %s\n", note)
	}
	fmt.Printf("  extra storage: %d elements at n=%d\n", res.ExtraElems, n)

	// Verification: the converted program must run clean.
	k, err := res.Program.Kernel(n)
	if err != nil {
		return err
	}
	if _, err := loops.RunSeq(k, n); err != nil {
		return fmt.Errorf("converted program still fails: %w", err)
	}
	fmt.Println("  verification: converted program runs single-assignment clean")
	fmt.Println()
	return nil
}
