// Command lfksim regenerates every figure and table of Bic, Nagel &
// Roy (1989) from the counting simulator, runs the ablations, and
// supports one-off kernel simulations. Experiments execute on the
// parallel sweep engine (internal/sweep); -all fans the experiments
// themselves out as well, and output order stays deterministic.
//
// Long sweeps are observable while they run: a live progress line on
// stderr tracks points done/failed with an ETA, -manifest records one
// JSON manifest per experiment (or per run with -kernel), -metrics
// prints the final metrics-registry snapshot, and -pprof serves
// net/http/pprof plus the registry over expvar for profiling. See
// docs/OBSERVABILITY.md.
//
// Usage:
//
//	lfksim -all                 run every experiment (concurrently)
//	lfksim -exp fig1            one experiment (fig1..fig5, tableA, tableB, ablation-*)
//	lfksim -exp fig2 -chart     include an ASCII chart of the figure
//	lfksim -all -manifest out/  also write one JSON run manifest per experiment
//	lfksim -all -metrics        print the metrics-registry snapshot after the run
//	lfksim -all -pprof :6060    serve /debug/pprof/ and /debug/vars while running
//	lfksim -docs -o EXPERIMENTS.md
//	                            regenerate the experiments document
//	lfksim -bench -o BENCH_sweep.json
//	                            time the suite and the standard grid —
//	                            serial vs parallel, and direct execution
//	                            vs reference-stream replay — and append
//	                            to the JSON benchmark history
//	lfksim -bench-compare -o BENCH_sweep.json
//	                            diff the last two benchmark history
//	                            entries, section by section
//	lfksim -workers 4           cap the worker pools (0 = GOMAXPROCS)
//	lfksim -list                list experiments and kernels
//	lfksim -kernel k1 -npe 8 -ps 32 -cache 256 -n 1000
//	                            one-off simulation of a kernel
//	lfksim -kernel k1 -machine  execute the kernel on the concurrent
//	                            machine instead of the counting simulator
//	lfksim -kernel k1 -machine -drop 0.2 -dup 0.1 -delay 200us -fault-seed 7
//	                            chaos run: lossy interconnect with the
//	                            self-healing page protocol (docs/FAULTS.md)
//	lfksim -kernel k1 -machine -deadline 30s
//	                            override the deadlock watchdog interval
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		exp      = flag.String("exp", "", "run one experiment by id")
		chart    = flag.Bool("chart", false, "render ASCII charts for figures")
		csvDir   = flag.String("csv", "", "also write each figure's series as CSV into this directory")
		svgDir   = flag.String("svg", "", "also render each figure as SVG into this directory")
		docs     = flag.Bool("docs", false, "regenerate the EXPERIMENTS.md document")
		bench    = flag.Bool("bench", false, "benchmark the suite and standard grid, append to JSON history")
		benchCmp = flag.Bool("bench-compare", false, "diff the last two entries of the benchmark history (reads the -o path)")
		out      = flag.String("o", "", "output file for -docs/-bench (default stdout)")
		workers  = flag.Int("workers", 0, "worker-pool size for sweeps (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list experiments and kernels")
		kernel   = flag.String("kernel", "", "simulate one kernel")
		npe      = flag.Int("npe", 8, "number of PEs")
		ps       = flag.Int("ps", 32, "page size (elements)")
		cache    = flag.Int("cache", 256, "per-PE cache size in elements (0 = none)")
		n        = flag.Int("n", 0, "problem size (0 = kernel default)")
		manifest = flag.String("manifest", "", "write JSON run manifests into this directory")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. :6060)")
		metrics  = flag.Bool("metrics", false, "print the final metrics-registry snapshot as JSON")
		quiet    = flag.Bool("quiet", false, "suppress the live progress line")

		// Concurrent-machine execution and its chaos knobs (docs/FAULTS.md).
		machineRun = flag.Bool("machine", false, "execute -kernel on the concurrent machine (goroutine per PE) instead of the counting simulator")
		faultSeed  = flag.Int64("fault-seed", 1, "deterministic fault-injection seed (with -drop/-dup/-delay)")
		drop       = flag.Float64("drop", 0, "page-message drop probability [0,1] (requires -machine)")
		dup        = flag.Float64("dup", 0, "page-message duplication probability [0,1] (requires -machine)")
		delay      = flag.Duration("delay", 0, "max page-message delay; 0 disables delay injection (requires -machine)")
		deadline   = flag.Duration("deadline", 0, "deadlock watchdog quiet interval; 0 derives from NPE and problem size, negative disables (requires -machine)")
	)
	flag.Parse()

	if err := validateFlags(*all, *exp, *kernel, *npe, *ps, *cache, *n, *workers); err != nil {
		fail(err)
	}
	if *bench && *benchCmp {
		fail(fmt.Errorf("-bench and -bench-compare are mutually exclusive; drop one"))
	}
	if err := validateFaultFlags(*machineRun, *kernel, *drop, *dup, *delay, *deadline); err != nil {
		fail(err)
	}

	// The sweep engine sizes its default pools from GOMAXPROCS, so a
	// single knob caps every fan-out level at once.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	// One registry per process: every layer (sweep, sim, machine,
	// network) reports into it through obs.Default, the progress line
	// renders from it, -metrics dumps it, and -pprof exports it.
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	if *pprof != "" {
		stopPprof, perr := servePprof(*pprof, reg)
		if perr != nil {
			fail(perr)
		}
		defer stopPprof()
	}
	progressOn := !*quiet

	var err error
	switch {
	case *list:
		listAll()
	case *docs:
		err = withProgress(reg, progressOn, func() error { return runDocs(*out) })
	case *bench:
		err = runBench(*out)
	case *benchCmp:
		err = runBenchCompare(*out)
	case *all:
		err = runAllExperiments(reg, progressOn, *chart, *csvDir, *svgDir, *manifest)
	case *exp != "":
		err = runOneExperiment(reg, progressOn, *exp, *chart, *csvDir, *svgDir, *manifest)
	case *kernel != "" && *machineRun:
		err = runMachineKernel(reg, *kernel, *n, *npe, *ps, *cache, *manifest,
			chaosFlags{seed: *faultSeed, drop: *drop, dup: *dup, delay: *delay}, *deadline)
	case *kernel != "":
		err = runKernel(reg, *kernel, *n, *npe, *ps, *cache, *manifest)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	if *metrics {
		payload, merr := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if merr != nil {
			fail(merr)
		}
		fmt.Println(string(payload))
	}
}

// validateFlags rejects nonsensical flag combinations and values with
// one-line errors before any work starts.
func validateFlags(all bool, exp, kernel string, npe, ps, cache, n, workers int) error {
	switch {
	case all && exp != "":
		return fmt.Errorf("-all and -exp are mutually exclusive; drop one")
	case all && kernel != "":
		return fmt.Errorf("-all and -kernel are mutually exclusive; drop one")
	case exp != "" && kernel != "":
		return fmt.Errorf("-exp and -kernel are mutually exclusive; drop one")
	case npe <= 0:
		return fmt.Errorf("-npe must be positive, got %d", npe)
	case ps <= 0:
		return fmt.Errorf("-ps must be positive, got %d", ps)
	case cache < 0:
		return fmt.Errorf("-cache must be >= 0 (0 disables caching), got %d", cache)
	case n < 0:
		return fmt.Errorf("-n must be >= 0 (0 selects the kernel default), got %d", n)
	case workers < 0:
		return fmt.Errorf("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", workers)
	}
	return nil
}

// chaosFlags bundles the fault-injection knobs of a -machine run.
type chaosFlags struct {
	seed      int64
	drop, dup float64
	delay     time.Duration
}

// enabled reports whether any fault injection was requested.
func (c chaosFlags) enabled() bool { return c.drop > 0 || c.dup > 0 || c.delay > 0 }

// validateFaultFlags rejects chaos knobs that are out of range or that
// were given without the mode they apply to.
func validateFaultFlags(machineRun bool, kernel string, drop, dup float64, delay, deadline time.Duration) error {
	switch {
	case machineRun && kernel == "":
		return fmt.Errorf("-machine requires -kernel")
	case !machineRun && (drop > 0 || dup > 0 || delay > 0 || deadline != 0):
		return fmt.Errorf("-drop/-dup/-delay/-deadline apply only to -machine runs; add -machine")
	case drop < 0 || drop > 1:
		return fmt.Errorf("-drop must be in [0,1], got %g", drop)
	case dup < 0 || dup > 1:
		return fmt.Errorf("-dup must be in [0,1], got %g", dup)
	case delay < 0:
		return fmt.Errorf("-delay must be >= 0, got %v", delay)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lfksim:", err)
	os.Exit(1)
}

// emit writes the payload to path, or stdout when path is empty.
func emit(path string, payload []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(payload)
		return err
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// withProgress runs f with the live progress line active.
func withProgress(reg *obs.Registry, on bool, f func() error) error {
	if !on {
		return f()
	}
	stop := startProgress(reg)
	defer stop()
	return f()
}

func runDocs(out string) error {
	outs, err := core.RunAll(context.Background())
	if err != nil {
		return err
	}
	return emit(out, []byte(core.RenderMarkdown(outs)))
}

func runAllExperiments(reg *obs.Registry, progress, chart bool, csvDir, svgDir, manifestDir string) error {
	var outs []*core.Outcome
	err := withProgress(reg, progress, func() error {
		var err error
		outs, err = core.RunAll(context.Background())
		return err
	})
	if err != nil {
		return err
	}
	for i, e := range core.Experiments() {
		if err := emitOutcome(e, outs[i], chart, csvDir, svgDir); err != nil {
			return err
		}
		if manifestDir != "" {
			// Per-experiment manifests; the registry snapshot spans all
			// experiments, so it is omitted here (use -metrics for it).
			if err := writeExperimentManifest(manifestDir, e, outs[i], nil); err != nil {
				return err
			}
		}
	}
	return nil
}

func runOneExperiment(reg *obs.Registry, progress bool, id string, chart bool, csvDir, svgDir, manifestDir string) error {
	e, err := core.ByID(id)
	if err != nil {
		return err
	}
	var o *core.Outcome
	err = withProgress(reg, progress, func() error {
		var err error
		o, err = e.RunTimed()
		return err
	})
	if err != nil {
		return err
	}
	if err := emitOutcome(e, o, chart, csvDir, svgDir); err != nil {
		return err
	}
	if manifestDir != "" {
		// A single experiment ran, so the registry snapshot is its own.
		if err := writeExperimentManifest(manifestDir, e, o, reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

func listAll() {
	fmt.Println("Experiments:")
	for _, e := range core.Experiments() {
		fmt.Printf("  %-18s %s\n", e.ID, e.Title)
	}
	fmt.Println("\nKernels:")
	for _, k := range loops.All() {
		fmt.Printf("  %-9s class=%-3s n=%-5d %s\n", k.Key, k.Class, k.DefaultN, k.Name)
	}
}

func emitOutcome(e core.Experiment, o *core.Outcome, chart bool, csvDir, svgDir string) error {
	fmt.Printf("==== %s ====\n", e.Title)
	fmt.Printf("paper: %s\n\n", o.Paper)
	fmt.Println(o.Text)
	if chart && o.Figure != nil {
		fmt.Println(o.Figure.Chart(12))
	}
	if csvDir != "" && o.Figure != nil {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, e.ID+".csv")
		if err := os.WriteFile(path, []byte(o.Figure.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	if svgDir != "" && o.Figure != nil {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(svgDir, e.ID+".svg")
		if err := os.WriteFile(path, []byte(o.Figure.SVG(640, 420)), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	for _, c := range o.Checks {
		status := "ok  "
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", status, c.Name, c.Detail)
	}
	fmt.Println()
	if !o.Pass() {
		return fmt.Errorf("experiment %s failed its shape checks", e.ID)
	}
	return nil
}

func runKernel(reg *obs.Registry, key string, n, npe, ps, cacheElems int, manifestDir string) error {
	k, err := loops.ByKey(key)
	if err != nil {
		return err
	}
	cfg := sim.PaperConfig(npe, ps)
	cfg.CacheElems = cacheElems
	s := sim.NewScratch()
	s.Metrics = reg
	start := time.Now()
	res, err := s.Run(k, n, cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Printf("%s (%s), n=%d, %d PEs, page size %d, cache %d elements\n",
		k.Key, k.Name, res.N, npe, ps, cacheElems)
	fmt.Printf("  totals: %s\n", res.Totals)
	fmt.Printf("  remote reads: %.2f%% of reads; cached: %.2f%%\n",
		res.Totals.RemotePercent(), res.Totals.CachedPercent())
	lb := stats.BalanceOf(res.PerPE.Extract(stats.Write))
	fmt.Printf("  write balance: min=%d mean=%.1f max=%d CV=%.3f\n", lb.Min, lb.Mean, lb.Max, lb.CV)
	if manifestDir != "" {
		if err := writeRunManifest(manifestDir, res, wall, reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// chaosDelayProb is the per-message delay probability used when -delay
// is set: a quarter of page traffic arrives late, which is enough to
// exercise reordering without dominating the drop/dup channels.
const chaosDelayProb = 0.25

// runMachineKernel executes one kernel on the concurrent machine,
// optionally over a lossy interconnect, and reports the self-healing
// protocol's counters alongside the paper's access totals.
func runMachineKernel(reg *obs.Registry, key string, n, npe, ps, cacheElems int, manifestDir string, chaos chaosFlags, deadline time.Duration) error {
	k, err := loops.ByKey(key)
	if err != nil {
		return err
	}
	cfg := machine.DefaultConfig(npe, ps)
	cfg.CacheElems = cacheElems
	cfg.Metrics = reg
	cfg.DeadlockTimeout = deadline
	var fc *network.FaultConfig
	if chaos.enabled() {
		fc = &network.FaultConfig{Seed: chaos.seed, Drop: chaos.drop, Dup: chaos.dup}
		if chaos.delay > 0 {
			fc.Delay = chaosDelayProb
			fc.MaxDelay = chaos.delay
		}
		if err := fc.Validate(); err != nil {
			return err
		}
		cfg.Faults = fc
	}
	start := time.Now()
	res, err := machine.Run(k, n, cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Printf("%s (%s), n=%d, %d PEs, page size %d, cache %d elements [machine]\n",
		k.Key, k.Name, res.N, npe, ps, cacheElems)
	fmt.Printf("  totals: %s\n", res.Totals)
	fmt.Printf("  remote reads: %.2f%% of reads; cached: %.2f%%\n",
		res.Totals.RemotePercent(), res.Totals.CachedPercent())
	fmt.Printf("  messages: %d page requests, %d page replies, %d reduction msgs\n",
		res.PageRequests, res.PageReplies, res.ReduceMsgs)
	if fc != nil {
		fmt.Printf("  faults: seed=%d dropped=%d duplicated=%d delayed=%d (%d redundant bytes)\n",
			fc.Seed, res.Faults.Dropped, res.Faults.Duplicated, res.Faults.Delayed, res.Faults.RedundantBytes)
		fmt.Printf("  healing: %d retries, %d dup replies suppressed, %d dup requests suppressed\n",
			res.Retries, res.DupReplies, res.DupRequests)
	}
	if manifestDir != "" {
		if err := writeMachineManifest(manifestDir, res, fc, wall, reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}
