// Command lfksim regenerates every figure and table of Bic, Nagel &
// Roy (1989) from the counting simulator, runs the ablations, and
// supports one-off kernel simulations. Experiments execute on the
// parallel sweep engine (internal/sweep); -all fans the experiments
// themselves out as well, and output order stays deterministic.
//
// Usage:
//
//	lfksim -all                 run every experiment (concurrently)
//	lfksim -exp fig1            one experiment (fig1..fig5, tableA, tableB, ablation-*)
//	lfksim -exp fig2 -chart     include an ASCII chart of the figure
//	lfksim -docs -o EXPERIMENTS.md
//	                            regenerate the experiments document
//	lfksim -bench -o BENCH_sweep.json
//	                            time the suite and the standard grid,
//	                            serial vs parallel, and emit JSON
//	lfksim -workers 4           cap the worker pools (0 = GOMAXPROCS)
//	lfksim -list                list experiments and kernels
//	lfksim -kernel k1 -npe 8 -ps 32 -cache 256 -n 1000
//	                            one-off simulation of a kernel
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		exp     = flag.String("exp", "", "run one experiment by id")
		chart   = flag.Bool("chart", false, "render ASCII charts for figures")
		csvDir  = flag.String("csv", "", "also write each figure's series as CSV into this directory")
		svgDir  = flag.String("svg", "", "also render each figure as SVG into this directory")
		docs    = flag.Bool("docs", false, "regenerate the EXPERIMENTS.md document")
		bench   = flag.Bool("bench", false, "benchmark the suite and standard grid, emit JSON")
		out     = flag.String("o", "", "output file for -docs/-bench (default stdout)")
		workers = flag.Int("workers", 0, "worker-pool size for sweeps (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and kernels")
		kernel  = flag.String("kernel", "", "simulate one kernel")
		npe     = flag.Int("npe", 8, "number of PEs")
		ps      = flag.Int("ps", 32, "page size (elements)")
		cache   = flag.Int("cache", 256, "per-PE cache size in elements (0 = none)")
		n       = flag.Int("n", 0, "problem size (0 = kernel default)")
	)
	flag.Parse()

	// The sweep engine sizes its default pools from GOMAXPROCS, so a
	// single knob caps every fan-out level at once.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	switch {
	case *list:
		listAll()
	case *docs:
		if err := runDocs(*out); err != nil {
			fail(err)
		}
	case *bench:
		if err := runBench(*out); err != nil {
			fail(err)
		}
	case *all:
		outs, err := core.RunAll(context.Background())
		if err != nil {
			fail(err)
		}
		for i, e := range core.Experiments() {
			if err := emitOutcome(e, outs[i], *chart, *csvDir, *svgDir); err != nil {
				fail(err)
			}
		}
	case *exp != "":
		e, err := core.ByID(*exp)
		if err != nil {
			fail(err)
		}
		o, err := e.Run()
		if err != nil {
			fail(err)
		}
		if err := emitOutcome(e, o, *chart, *csvDir, *svgDir); err != nil {
			fail(err)
		}
	case *kernel != "":
		if err := runKernel(*kernel, *n, *npe, *ps, *cache); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lfksim:", err)
	os.Exit(1)
}

// emit writes the payload to path, or stdout when path is empty.
func emit(path string, payload []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(payload)
		return err
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runDocs(out string) error {
	outs, err := core.RunAll(context.Background())
	if err != nil {
		return err
	}
	return emit(out, []byte(core.RenderMarkdown(outs)))
}

func listAll() {
	fmt.Println("Experiments:")
	for _, e := range core.Experiments() {
		fmt.Printf("  %-18s %s\n", e.ID, e.Title)
	}
	fmt.Println("\nKernels:")
	for _, k := range loops.All() {
		fmt.Printf("  %-9s class=%-3s n=%-5d %s\n", k.Key, k.Class, k.DefaultN, k.Name)
	}
}

func emitOutcome(e core.Experiment, o *core.Outcome, chart bool, csvDir, svgDir string) error {
	fmt.Printf("==== %s ====\n", e.Title)
	fmt.Printf("paper: %s\n\n", o.Paper)
	fmt.Println(o.Text)
	if chart && o.Figure != nil {
		fmt.Println(o.Figure.Chart(12))
	}
	if csvDir != "" && o.Figure != nil {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, e.ID+".csv")
		if err := os.WriteFile(path, []byte(o.Figure.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	if svgDir != "" && o.Figure != nil {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(svgDir, e.ID+".svg")
		if err := os.WriteFile(path, []byte(o.Figure.SVG(640, 420)), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	for _, c := range o.Checks {
		status := "ok  "
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", status, c.Name, c.Detail)
	}
	fmt.Println()
	if !o.Pass() {
		return fmt.Errorf("experiment %s failed its shape checks", e.ID)
	}
	return nil
}

func runKernel(key string, n, npe, ps, cacheElems int) error {
	k, err := loops.ByKey(key)
	if err != nil {
		return err
	}
	cfg := sim.PaperConfig(npe, ps)
	cfg.CacheElems = cacheElems
	res, err := sim.Run(k, n, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s), n=%d, %d PEs, page size %d, cache %d elements\n",
		k.Key, k.Name, res.N, npe, ps, cacheElems)
	fmt.Printf("  totals: %s\n", res.Totals)
	fmt.Printf("  remote reads: %.2f%% of reads; cached: %.2f%%\n",
		res.Totals.RemotePercent(), res.Totals.CachedPercent())
	lb := stats.BalanceOf(res.PerPE.Extract(stats.Write))
	fmt.Printf("  write balance: min=%d mean=%.1f max=%d CV=%.3f\n", lb.Min, lb.Mean, lb.Max, lb.CV)
	return nil
}
