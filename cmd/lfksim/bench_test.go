package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

func testReport(stamp string) benchReport {
	return benchReport{GeneratedBy: "test", Timestamp: stamp, GoVersion: "go1.22", GOMAXPROCS: 4, NumCPU: 4}
}

// TestBenchHistoryAppends: consecutive -bench runs accumulate entries
// instead of overwriting the file.
func TestBenchHistoryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")

	first, err := appendBenchHistory(path, testReport("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, first, 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := appendBenchHistory(path, testReport("t2"))
	if err != nil {
		t.Fatal(err)
	}

	var history []benchReport
	if err := json.Unmarshal(second, &history); err != nil {
		t.Fatalf("history is not a JSON array: %v", err)
	}
	if len(history) != 2 {
		t.Fatalf("entries = %d, want 2", len(history))
	}
	if history[0].Timestamp != "t1" || history[1].Timestamp != "t2" {
		t.Errorf("order wrong: %q then %q", history[0].Timestamp, history[1].Timestamp)
	}
}

// TestBenchHistoryMigratesLegacyObject: a pre-history single-report
// file becomes the first entry instead of being lost.
func TestBenchHistoryMigratesLegacyObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	legacy, err := json.Marshal(testReport("legacy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	payload, err := appendBenchHistory(path, testReport("new"))
	if err != nil {
		t.Fatal(err)
	}
	var history []benchReport
	if err := json.Unmarshal(payload, &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || history[0].Timestamp != "legacy" || history[1].Timestamp != "new" {
		t.Errorf("legacy migration wrong: %+v", history)
	}
}

// TestBenchHistoryRefusesGarbage: an unparseable file is an error, not
// an overwrite.
func TestBenchHistoryRefusesGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendBenchHistory(path, testReport("x")); err == nil {
		t.Error("garbage history accepted")
	}
}

// TestBenchHistoryMissingFile: a missing file starts a fresh history.
func TestBenchHistoryMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	payload, err := appendBenchHistory(path, testReport("only"))
	if err != nil {
		t.Fatal(err)
	}
	var history []benchReport
	if err := json.Unmarshal(payload, &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 || history[0].Timestamp != "only" {
		t.Errorf("fresh history wrong: %+v", history)
	}
}

// writeHistory marshals reports into a history file for compare tests.
func writeHistory(t *testing.T, reports ...benchReport) string {
	t.Helper()
	payload, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchCompareRendersSections: the diff report names every section
// and both entries, including the replay comparison when both entries
// carry one.
func TestBenchCompareRendersSections(t *testing.T) {
	old := testReport("t1")
	old.Grid.Points = 308
	old.Grid.Serial.SecPerPoint = 4e-4
	old.Replay = &benchReplay{Points: 308, Captures: 11, Speedup: 2.0, SteadyAllocsPerPoint: 4}
	cur := testReport("t2")
	cur.Grid.Points = 308
	cur.Grid.Serial.SecPerPoint = 3e-4
	cur.Replay = &benchReplay{Points: 308, Captures: 11, Speedup: 2.2, SteadyAllocsPerPoint: 4,
		Batch: benchLeg{Sec: 0.025, SecPerPoint: 8e-5}, BatchSpeedup: 4.9, SteadyBatchAllocsPerPoint: 0.1}
	out := renderBenchCompare("h.json", 2, old, cur)
	for _, want := range []string{"t1", "t2", "suite:", "grid", "replay", "2.00x → 2.20x", "-25.0%",
		// The batch leg is new in cur: rendered as baseline-less, not a diff.
		"batch     new leg, no baseline", "4.90x"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}

	// Both entries carrying a batch leg diff it numerically.
	old.Replay.Batch = benchLeg{Sec: 0.030, SecPerPoint: 9.7e-5}
	old.Replay.BatchSpeedup = 4.0
	out2 := renderBenchCompare("h.json", 2, old, cur)
	if !strings.Contains(out2, "batch speedup 4.00x → 4.90x") {
		t.Errorf("batch diff missing:\n%s", out2)
	}
}

// TestBenchCompareMixedHistory: a loadgen (serve-only) entry following
// a sweep-benchmark entry diffs cleanly — absent sections are flagged
// or skipped, never rendered as zero-valued regressions.
func TestBenchCompareMixedHistory(t *testing.T) {
	old := testReport("t1")
	old.Grid.Points = 308
	old.Grid.Parallel.SecPerPoint = 2e-4
	cur := testReport("t2")
	cur.Serve = &serve.LoadReport{Requests: 300, RequestsPerSec: 5000, P50MS: 0.4, P99MS: 15, CacheHitRate: 0.75}
	out := renderBenchCompare("h.json", 2, old, cur)
	if !strings.Contains(out, "suite/grid: not measured in the newer entry") {
		t.Errorf("absent sweep sections not flagged:\n%s", out)
	}
	if strings.Contains(out, "-100.0%") {
		t.Errorf("absent section rendered as a regression:\n%s", out)
	}
	if !strings.Contains(out, "serve: new section, no baseline") {
		t.Errorf("serve baseline not flagged:\n%s", out)
	}

	// Two serve entries diff the serve section and stay silent on the
	// sweep sections neither measured.
	old2 := testReport("t2")
	old2.Serve = &serve.LoadReport{Requests: 300, RequestsPerSec: 5000, P50MS: 0.4, P99MS: 15, CacheHitRate: 0.75}
	cur2 := testReport("t3")
	cur2.Serve = &serve.LoadReport{Requests: 300, RequestsPerSec: 6000, P50MS: 0.3, P99MS: 12, CacheHitRate: 0.8}
	out2 := renderBenchCompare("h.json", 3, old2, cur2)
	if strings.Contains(out2, "suite") || strings.Contains(out2, "replay") {
		t.Errorf("unmeasured sections rendered for serve-only entries:\n%s", out2)
	}
	if !strings.Contains(out2, "throughput") {
		t.Errorf("serve diff missing:\n%s", out2)
	}
}

// TestBenchCompareToleratesLegacyEntries: an old entry without a
// timestamp or replay section — the history's first real entry predates
// both fields — still compares, flagged rather than failing.
func TestBenchCompareToleratesLegacyEntries(t *testing.T) {
	old := testReport("") // pre-stamping entry
	cur := testReport("t2")
	cur.Replay = &benchReplay{Points: 308, Captures: 11, Speedup: 2.1, SteadyAllocsPerPoint: 4}
	out := renderBenchCompare("h.json", 2, old, cur)
	if !strings.Contains(out, "(no timestamp)") {
		t.Errorf("legacy entry not flagged:\n%s", out)
	}
	if !strings.Contains(out, "new section, no baseline") {
		t.Errorf("missing replay baseline not flagged:\n%s", out)
	}
}

// TestBenchCompareNeedsTwoEntries: fewer than two history entries is a
// descriptive error, as is a missing or garbage file.
func TestBenchCompareNeedsTwoEntries(t *testing.T) {
	path := writeHistory(t, testReport("only"))
	if err := runBenchCompare(path); err == nil || !strings.Contains(err.Error(), "at least two") {
		t.Errorf("single-entry history: err = %v, want 'at least two'", err)
	}
	if err := runBenchCompare(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBenchCompare(garbage); err == nil {
		t.Error("garbage history accepted")
	}
}

// TestBenchCompareReadsHistory: the happy path end to end — two
// entries on disk, a rendered diff, no error.
func TestBenchCompareReadsHistory(t *testing.T) {
	path := writeHistory(t, testReport("t1"), testReport("t2"))
	if err := runBenchCompare(path); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

// TestValidateFlags covers the CLI's input validation satellite: bad
// values produce errors, valid defaults pass.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(false, "", "", 8, 32, 256, 0, 0); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	cases := []struct {
		name string
		err  bool
		all  bool
		exp  string
		kern string
		npe  int
		ps   int
		ce   int
		n    int
		w    int
	}{
		{name: "all+exp", err: true, all: true, exp: "fig1", npe: 8, ps: 32},
		{name: "all+kernel", err: true, all: true, kern: "k1", npe: 8, ps: 32},
		{name: "exp+kernel", err: true, exp: "fig1", kern: "k1", npe: 8, ps: 32},
		{name: "zero npe", err: true, npe: 0, ps: 32},
		{name: "negative ps", err: true, npe: 8, ps: -1},
		{name: "negative cache", err: true, npe: 8, ps: 32, ce: -5},
		{name: "negative n", err: true, npe: 8, ps: 32, n: -1},
		{name: "negative workers", err: true, npe: 8, ps: 32, w: -2},
		{name: "valid kernel run", npe: 4, ps: 64, ce: 128, n: 100, kern: "k1"},
	}
	for _, c := range cases {
		err := validateFlags(c.all, c.exp, c.kern, c.npe, c.ps, c.ce, c.n, c.w)
		if (err != nil) != c.err {
			t.Errorf("%s: err = %v, want error=%v", c.name, err, c.err)
		}
	}
}
