package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func testReport(stamp string) benchReport {
	return benchReport{GeneratedBy: "test", Timestamp: stamp, GoVersion: "go1.22", GOMAXPROCS: 4, NumCPU: 4}
}

// TestBenchHistoryAppends: consecutive -bench runs accumulate entries
// instead of overwriting the file.
func TestBenchHistoryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")

	first, err := appendBenchHistory(path, testReport("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, first, 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := appendBenchHistory(path, testReport("t2"))
	if err != nil {
		t.Fatal(err)
	}

	var history []benchReport
	if err := json.Unmarshal(second, &history); err != nil {
		t.Fatalf("history is not a JSON array: %v", err)
	}
	if len(history) != 2 {
		t.Fatalf("entries = %d, want 2", len(history))
	}
	if history[0].Timestamp != "t1" || history[1].Timestamp != "t2" {
		t.Errorf("order wrong: %q then %q", history[0].Timestamp, history[1].Timestamp)
	}
}

// TestBenchHistoryMigratesLegacyObject: a pre-history single-report
// file becomes the first entry instead of being lost.
func TestBenchHistoryMigratesLegacyObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	legacy, err := json.Marshal(testReport("legacy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	payload, err := appendBenchHistory(path, testReport("new"))
	if err != nil {
		t.Fatal(err)
	}
	var history []benchReport
	if err := json.Unmarshal(payload, &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || history[0].Timestamp != "legacy" || history[1].Timestamp != "new" {
		t.Errorf("legacy migration wrong: %+v", history)
	}
}

// TestBenchHistoryRefusesGarbage: an unparseable file is an error, not
// an overwrite.
func TestBenchHistoryRefusesGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendBenchHistory(path, testReport("x")); err == nil {
		t.Error("garbage history accepted")
	}
}

// TestBenchHistoryMissingFile: a missing file starts a fresh history.
func TestBenchHistoryMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	payload, err := appendBenchHistory(path, testReport("only"))
	if err != nil {
		t.Fatal(err)
	}
	var history []benchReport
	if err := json.Unmarshal(payload, &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 || history[0].Timestamp != "only" {
		t.Errorf("fresh history wrong: %+v", history)
	}
}

// TestValidateFlags covers the CLI's input validation satellite: bad
// values produce errors, valid defaults pass.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(false, "", "", 8, 32, 256, 0, 0); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	cases := []struct {
		name string
		err  bool
		all  bool
		exp  string
		kern string
		npe  int
		ps   int
		ce   int
		n    int
		w    int
	}{
		{name: "all+exp", err: true, all: true, exp: "fig1", npe: 8, ps: 32},
		{name: "all+kernel", err: true, all: true, kern: "k1", npe: 8, ps: 32},
		{name: "exp+kernel", err: true, exp: "fig1", kern: "k1", npe: 8, ps: 32},
		{name: "zero npe", err: true, npe: 0, ps: 32},
		{name: "negative ps", err: true, npe: 8, ps: -1},
		{name: "negative cache", err: true, npe: 8, ps: 32, ce: -5},
		{name: "negative n", err: true, npe: 8, ps: 32, n: -1},
		{name: "negative workers", err: true, npe: 8, ps: 32, w: -2},
		{name: "valid kernel run", npe: 4, ps: 64, ce: 128, n: 100, kern: "k1"},
	}
	for _, c := range cases {
		err := validateFlags(c.all, c.exp, c.kern, c.npe, c.ps, c.ce, c.n, c.w)
		if (err != nil) != c.err {
			t.Errorf("%s: err = %v, want error=%v", c.name, err, c.err)
		}
	}
}
