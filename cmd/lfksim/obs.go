package main

// Observability plumbing for lfksim: the live stderr progress line
// (rendered from the sweep engine's registry counters), the pprof +
// expvar HTTP endpoint for profiling long sweeps, and the JSON manifest
// writers that durably tie results to the config/toolchain that
// produced them. See docs/OBSERVABILITY.md.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// servePprof starts an HTTP server on addr exposing /debug/pprof/ and
// /debug/vars (expvar), with the metrics registry published under the
// "repro" expvar name. The handlers live on a dedicated mux — the same
// serve.AttachDebug set the lfksimd daemon mounts — not on
// http.DefaultServeMux, so nothing leaks into other servers in the
// process. Listening happens synchronously so a bad address fails the
// command immediately; the returned shutdown function closes the
// server cleanly.
func servePprof(addr string, reg *obs.Registry) (shutdown func(), err error) {
	mux := http.NewServeMux()
	serve.AttachDebug(mux, reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-pprof %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "lfksim: profiling at http://%s/debug/pprof/ (metrics at /debug/vars)\n", ln.Addr())
	go func() { _ = srv.Serve(ln) }()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}, nil
}

// startProgress renders a live one-line progress display on stderr,
// driven by the sweep counters every running sweep reports into the
// registry (so nested sweeps inside concurrent experiments aggregate
// naturally). The returned stop function prints the final state and
// releases the goroutine.
func startProgress(reg *obs.Registry) (stop func()) {
	var (
		done = make(chan struct{})
		wg   sync.WaitGroup
		t0   = time.Now()
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		printed := false
		line := func() {
			total := reg.Counter(sweep.MetricPointsTotal).Value()
			if total == 0 {
				return // no sweep has started yet
			}
			finished := reg.Counter(sweep.MetricPointsDone).Value() +
				reg.Counter(sweep.MetricPointsFailed).Value()
			failed := reg.Counter(sweep.MetricPointsFailed).Value()
			elapsed := time.Since(t0).Round(100 * time.Millisecond)
			eta := "-"
			if finished > 0 && finished < total {
				rem := time.Duration(float64(time.Since(t0)) / float64(finished) * float64(total-finished))
				eta = rem.Round(100 * time.Millisecond).String()
			}
			fmt.Fprintf(os.Stderr, "\rlfksim: %d/%d points, %d failed, %v elapsed, eta %s    ",
				finished, total, failed, elapsed, eta)
			printed = true
		}
		for {
			select {
			case <-done:
				line()
				if printed {
					fmt.Fprintln(os.Stderr)
				}
				return
			case <-tick.C:
				line()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// configInfo flattens a simulator config for a manifest.
func configInfo(c sim.Config) obs.ConfigInfo {
	return obs.ConfigInfo{
		NPE:        c.NPE,
		PageSize:   c.PageSize,
		CacheElems: c.CacheElems,
		Layout:     c.Layout.String(),
		Policy:     c.Policy.String(),
	}
}

// writeRunManifest records one kernel simulation as <dir>/run-<kernel>.json.
func writeRunManifest(dir string, res *sim.Result, wall time.Duration, snap *obs.Snapshot) error {
	m := obs.NewRunManifest(res.Kernel, res.N, 0, configInfo(res.Config), wall, res.PerPE)
	for _, cs := range res.Checksums {
		m.Checksums = append(m.Checksums, obs.Checksum{
			Name: cs.Name, Elems: cs.Elems, Defined: cs.Defined, Sum: cs.Sum,
		})
	}
	m.Metrics = snap
	path, err := obs.WriteManifest(dir, "run-"+res.Kernel, m)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// machineConfigInfo flattens a machine config for a manifest.
func machineConfigInfo(c machine.Config) obs.ConfigInfo {
	return obs.ConfigInfo{
		NPE:        c.NPE,
		PageSize:   c.PageSize,
		CacheElems: c.CacheElems,
		Layout:     c.Layout.String(),
		Policy:     c.Policy.String(),
	}
}

// writeMachineManifest records one concurrent-machine run as
// <dir>/machine-<kernel>.json, including the fault-injection block when
// the run was a chaos run.
func writeMachineManifest(dir string, res *machine.Result, fc *network.FaultConfig, wall time.Duration, snap *obs.Snapshot) error {
	m := obs.NewRunManifest(res.Kernel, res.N, 0, machineConfigInfo(res.Config), wall, res.PerPE)
	for _, cs := range res.Checksums {
		m.Checksums = append(m.Checksums, obs.Checksum{
			Name: cs.Name, Elems: cs.Elems, Defined: cs.Defined, Sum: cs.Sum,
		})
	}
	if fc != nil {
		m.Faults = &obs.FaultInfo{
			Seed:           fc.Seed,
			Drop:           fc.Drop,
			Dup:            fc.Dup,
			DelayProb:      fc.Delay,
			MaxDelayMS:     float64(fc.MaxDelay) / float64(time.Millisecond),
			Dropped:        res.Faults.Dropped,
			Duplicated:     res.Faults.Duplicated,
			Delayed:        res.Faults.Delayed,
			RedundantBytes: res.Faults.RedundantBytes,
			Retries:        res.Retries,
			DupReplies:     res.DupReplies,
			DupRequests:    res.DupRequests,
		}
	}
	m.Metrics = snap
	path, err := obs.WriteManifest(dir, "machine-"+res.Kernel, m)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeExperimentManifest records one experiment outcome as
// <dir>/<experiment-id>.json.
func writeExperimentManifest(dir string, e core.Experiment, o *core.Outcome, snap *obs.Snapshot) error {
	m := &obs.ExperimentManifest{
		Schema:  obs.ExperimentManifestSchema,
		ID:      e.ID,
		Title:   e.Title,
		Paper:   o.Paper,
		WallSec: o.Wall.Seconds(),
		Env:     obs.CaptureEnv(),
		Pass:    o.Pass(),
		Checks:  make([]obs.Check, 0, len(o.Checks)),
		Metrics: snap,
	}
	for _, c := range o.Checks {
		m.Checks = append(m.Checks, obs.Check{Name: c.Name, Pass: c.Pass, Detail: c.Detail})
	}
	path, err := obs.WriteManifest(dir, e.ID, m)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
