package main

// The -bench mode: times the full experiment suite and the standard
// paper grid, serial (GOMAXPROCS=1, single-worker pools) versus
// parallel (all cores), and appends the measurements to a JSON history
// — BENCH_sweep.json in the repository root is this program's output.
// Prior entries are preserved, so the file records the performance
// trajectory across changes rather than only the latest run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchio"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/refstream"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

type benchReport struct {
	GeneratedBy string       `json:"generated_by"`
	Timestamp   string       `json:"timestamp,omitempty"` // RFC 3339 UTC
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Suite       benchSuite   `json:"suite"`
	Grid        benchGrid    `json:"grid"`
	Replay      *benchReplay `json:"replay,omitempty"` // absent in pre-replay history entries
	// Serve is the serving-layer section appended by lfksimd -loadgen
	// (such entries carry only this section; -bench never writes it).
	Serve *serve.LoadReport `json:"serve,omitempty"`
}

// benchSuite times every experiment (each already sweeping its own
// grid): serial pins GOMAXPROCS to 1 so every pool degenerates to one
// worker; parallel restores the full core count and fans experiments
// out via core.RunAll.
type benchSuite struct {
	Experiments int     `json:"experiments"`
	Checks      int     `json:"checks"`
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

type benchGrid struct {
	Points   int      `json:"points"`
	Serial   benchLeg `json:"serial"`
	Parallel benchLeg `json:"parallel"`
	Speedup  float64  `json:"speedup"`
}

type benchLeg struct {
	Sec            float64 `json:"sec"`
	SecPerPoint    float64 `json:"sec_per_point"`
	PointsPerSec   float64 `json:"points_per_sec"`
	AllocsPerPoint float64 `json:"allocs_per_point"`
	BytesPerPoint  float64 `json:"bytes_per_point"`
}

// benchReplay isolates the execute-once/classify-many win on the
// standard grid, one single-worker sweep per strategy: Direct forces
// replay off (every point through sim.Scratch); Replay is per-point
// replay (ReplayPoint — one capture per (kernel, N) group, one stream
// pass per grid point); Batch is the full planner (ReplayOn — one
// stream pass per capture group classifying the whole group at once).
// BatchPar is the same planner with a multi-worker pool (Workers
// records the pool width): the pipelined capture/replay stages
// overlap and each batch pass fans RunBatch out across slab
// partitions. Speedup, BatchSpeedup and BatchParSpeedup are each
// leg's win over Direct. SteadyAllocsPerPoint measures Replayer.Run
// alone — repeated replays of one captured stream, capture excluded —
// the steady state the ≤5 allocations budget is about (the Result
// itself accounts for them; see docs/PERF.md);
// SteadyBatchAllocsPerPoint is the same for RunBatch, amortized over
// the batch's points. Workers/BatchPar are zero in history entries
// that predate the parallel leg; -bench-compare tolerates them.
type benchReplay struct {
	Points                    int      `json:"points"`
	Captures                  int64    `json:"captures"`
	Workers                   int      `json:"workers,omitempty"`
	Direct                    benchLeg `json:"direct"`
	Replay                    benchLeg `json:"replay"`
	Batch                     benchLeg `json:"batch"`
	BatchPar                  benchLeg `json:"batch_par"`
	Speedup                   float64  `json:"speedup"`
	BatchSpeedup              float64  `json:"batch_speedup"`
	BatchParSpeedup           float64  `json:"batch_par_speedup,omitempty"`
	SteadyAllocsPerPoint      float64  `json:"steady_allocs_per_point"`
	SteadyBatchAllocsPerPoint float64  `json:"steady_batch_allocs_per_point"`
}

// standardGrid is the grid the benchmark sweeps: every paper-studied
// kernel across the paper's PE axis, both page sizes, cache on/off.
func standardGrid() []sweep.Point {
	return sweep.Grid{
		Kernels:    loops.PaperSet(),
		PageSizes:  []int{32, 64},
		CacheElems: []int{0, 256},
	}.Points()
}

func runBench(out string) error {
	ctx := context.Background()
	procs := runtime.GOMAXPROCS(0)
	rep := benchReport{
		GeneratedBy: "go run ./cmd/lfksim -bench",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  procs,
		NumCPU:      runtime.NumCPU(),
	}

	// Suite, serial: GOMAXPROCS=1 makes every sweep pool single-worker
	// and removes goroutine parallelism, the honest serial baseline.
	runtime.GOMAXPROCS(1)
	start := time.Now()
	for _, e := range core.Experiments() {
		o, err := e.Run()
		if err != nil {
			runtime.GOMAXPROCS(procs)
			return fmt.Errorf("bench: %s (serial): %w", e.ID, err)
		}
		rep.Suite.Experiments++
		rep.Suite.Checks += len(o.Checks)
	}
	rep.Suite.SerialSec = time.Since(start).Seconds()
	runtime.GOMAXPROCS(procs)

	// Suite, parallel: experiments fan out and each sweeps concurrently.
	start = time.Now()
	if _, err := core.RunAll(ctx); err != nil {
		return fmt.Errorf("bench: parallel suite: %w", err)
	}
	rep.Suite.ParallelSec = time.Since(start).Seconds()
	rep.Suite.Speedup = rep.Suite.SerialSec / rep.Suite.ParallelSec

	// Grid: one homogeneous sweep, the engine's raw throughput.
	pts := standardGrid()
	rep.Grid.Points = len(pts)
	leg := func(workers int) (benchLeg, error) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := sweep.RunN(ctx, workers, pts); err != nil {
			return benchLeg{}, err
		}
		sec := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		n := float64(len(pts))
		return benchLeg{
			Sec:            sec,
			SecPerPoint:    sec / n,
			PointsPerSec:   n / sec,
			AllocsPerPoint: float64(after.Mallocs-before.Mallocs) / n,
			BytesPerPoint:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		}, nil
	}
	var err error
	if rep.Grid.Serial, err = leg(1); err != nil {
		return fmt.Errorf("bench: serial grid: %w", err)
	}
	if rep.Grid.Parallel, err = leg(0); err != nil {
		return fmt.Errorf("bench: parallel grid: %w", err)
	}
	rep.Grid.Speedup = rep.Grid.Serial.Sec / rep.Grid.Parallel.Sec

	// Replay: the same grid, direct versus replay — the execute-once/
	// classify-many section. The first three legs run single-worker so
	// the per-point ratio is a clean algorithmic comparison rather than
	// a scheduling one; the batch_par leg then re-runs the full planner
	// with a multi-worker pool, which overlaps captures with replays
	// (pipelined planner) and partitions each batch pass (parallel
	// RunBatch) — the end-to-end grid number the ≥10x target is about.
	replay := &benchReplay{Points: len(pts)}
	replayLeg := func(mode sweep.ReplayMode, workers int) (benchLeg, int64, error) {
		reg := obs.NewRegistry()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := sweep.RunOpts(ctx, pts, sweep.Options{Workers: workers, Metrics: reg, Replay: mode}); err != nil {
			return benchLeg{}, 0, err
		}
		sec := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		n := float64(len(pts))
		return benchLeg{
			Sec:            sec,
			SecPerPoint:    sec / n,
			PointsPerSec:   n / sec,
			AllocsPerPoint: float64(after.Mallocs-before.Mallocs) / n,
			BytesPerPoint:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		}, reg.Counter(sweep.MetricStreamCaptures).Value(), nil
	}
	if replay.Direct, _, err = replayLeg(sweep.ReplayOff, 1); err != nil {
		return fmt.Errorf("bench: direct grid: %w", err)
	}
	if replay.Replay, replay.Captures, err = replayLeg(sweep.ReplayPoint, 1); err != nil {
		return fmt.Errorf("bench: replay grid: %w", err)
	}
	if replay.Batch, _, err = replayLeg(sweep.ReplayOn, 1); err != nil {
		return fmt.Errorf("bench: batch grid: %w", err)
	}
	// A pool of at least four workers even on a small host, so the
	// partitioned-batch and pipelined-capture paths are the ones being
	// measured; on a one-core box the leg records the (honest) lack of
	// wall-clock win, and the gomaxprocs/num_cpu fields say why.
	replay.Workers = procs
	if replay.Workers < 4 {
		replay.Workers = 4
	}
	if replay.BatchPar, _, err = replayLeg(sweep.ReplayOn, replay.Workers); err != nil {
		return fmt.Errorf("bench: parallel batch grid: %w", err)
	}
	replay.Speedup = replay.Direct.Sec / replay.Replay.Sec
	replay.BatchSpeedup = replay.Direct.Sec / replay.Batch.Sec
	replay.BatchParSpeedup = replay.Direct.Sec / replay.BatchPar.Sec
	if replay.SteadyAllocsPerPoint, err = steadyReplayAllocs(); err != nil {
		return fmt.Errorf("bench: steady-state replay: %w", err)
	}
	if replay.SteadyBatchAllocsPerPoint, err = steadyBatchAllocs(); err != nil {
		return fmt.Errorf("bench: steady-state batch replay: %w", err)
	}
	rep.Replay = replay

	payload, err := appendBenchHistory(out, rep)
	if err != nil {
		return err
	}
	return emit(out, payload)
}

// steadyReplayAllocs measures the allocations of one Replayer.Run in
// steady state: a stream captured once, a warmed Replayer, repeated
// classification under the paper's framed baseline (the general event
// path, so the number is the ceiling across paths).
func steadyReplayAllocs() (float64, error) {
	k := loops.PaperSet()[0]
	st, err := refstream.Capture(k, 0)
	if err != nil {
		return 0, err
	}
	cfg := sim.PaperConfig(8, 32)
	r := refstream.NewReplayer()
	if _, err := r.Run(st, cfg); err != nil { // warm-up: buffers grow on first use
		return 0, err
	}
	const iters = 100
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, err := r.Run(st, cfg); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / iters, nil
}

// steadyBatchAllocs is steadyReplayAllocs for RunBatch: one captured
// stream, a warmed Replayer, repeated batch passes over the standard
// grid's configuration set for one kernel, allocations amortized over
// the batch's points.
func steadyBatchAllocs() (float64, error) {
	k := loops.PaperSet()[0]
	st, err := refstream.Capture(k, 0)
	if err != nil {
		return 0, err
	}
	var cfgs []sim.Config
	for _, npe := range sweep.PaperPEs {
		for _, ps := range []int{32, 64} {
			cfg := sim.PaperConfig(npe, ps)
			cfgs = append(cfgs, cfg)
			cfg.CacheElems = 0
			cfgs = append(cfgs, cfg)
		}
	}
	r := refstream.NewReplayer()
	if _, err := r.RunBatch(st, cfgs); err != nil { // warm-up: slabs grow on first use
		return 0, err
	}
	const iters = 100
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, err := r.RunBatch(st, cfgs); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	// Each RunBatch call allocates the results slice once on top of the
	// per-config Results; that is one allocation per call, not per
	// point, so account it per call (subtract iters) to keep the
	// per-point figure comparable to the single-Run ≤5 budget.
	return float64(after.Mallocs-before.Mallocs-iters) / float64(iters*len(cfgs)), nil
}

// appendBenchHistory renders the benchmark file contents via the
// shared history package (internal/benchio): a JSON array of reports,
// oldest first, with rep appended. Writing to stdout (path == "")
// starts a fresh one-entry history.
func appendBenchHistory(path string, rep benchReport) ([]byte, error) {
	payload, err := benchio.Append(path, rep)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return payload, nil
}

// runBenchCompare implements -bench-compare: it diffs the last two
// entries of the benchmark history at path, section by section, and
// writes a human-readable report to stdout. Legacy entries — written
// before the timestamp field or the replay section existed — are
// tolerated: missing fields compare as absent rather than failing.
func runBenchCompare(path string) error {
	if path == "" {
		path = "BENCH_sweep.json"
	}
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("bench-compare: %w", err)
	}
	history, err := benchio.ReadHistory(path)
	if err != nil {
		return fmt.Errorf("bench-compare: %w", err)
	}
	if len(history) < 2 {
		return fmt.Errorf("bench-compare: %s holds %d entr%s; need at least two runs to compare (run -bench again)",
			path, len(history), map[bool]string{true: "y", false: "ies"}[len(history) == 1])
	}
	var old, cur benchReport
	if err := json.Unmarshal(history[len(history)-2], &old); err != nil {
		return fmt.Errorf("bench-compare: %s entry %d: %w", path, len(history)-1, err)
	}
	if err := json.Unmarshal(history[len(history)-1], &cur); err != nil {
		return fmt.Errorf("bench-compare: %s entry %d: %w", path, len(history), err)
	}
	fmt.Print(renderBenchCompare(path, len(history), old, cur))
	return nil
}

// benchStamp labels a history entry for the compare report.
func benchStamp(r benchReport) string {
	if r.Timestamp == "" {
		return "(no timestamp)" // legacy entry, predates stamping
	}
	return r.Timestamp
}

// benchDelta renders "old → new (±x.x%)" for a measurement where lower
// is better; sign conventions stay with the raw numbers, the percentage
// is the relative change.
func benchDelta(old, cur float64, unit string) string {
	if old == 0 {
		return fmt.Sprintf("%.4g%s → %.4g%s (no baseline)", old, unit, cur, unit)
	}
	return fmt.Sprintf("%.4g%s → %.4g%s (%+.1f%%)", old, unit, cur, unit, (cur-old)/old*100)
}

// renderBenchCompare formats the section-by-section diff of the two
// most recent history entries.
func renderBenchCompare(path string, entries int, old, cur benchReport) string {
	var b []byte
	p := func(format string, args ...any) { b = fmt.Appendf(b, format+"\n", args...) }
	p("%s: comparing entry %d (%s) with entry %d (%s)", path, entries-1, benchStamp(old), entries, benchStamp(cur))
	// A history can interleave lfksim -bench entries (suite/grid/replay
	// sections) with lfksimd -loadgen entries (serve section); diff each
	// section only between entries that measured it.
	oldSweep, curSweep := old.Grid.Points > 0, cur.Grid.Points > 0
	switch {
	case !oldSweep && !curSweep:
		// Neither entry is a sweep-benchmark run; say nothing.
	case !curSweep:
		p("suite/grid: not measured in the newer entry")
	case !oldSweep:
		p("suite/grid: new sections, no baseline (%d points, parallel %.4g sec/point)",
			cur.Grid.Points, cur.Grid.Parallel.SecPerPoint)
	default:
		p("suite:")
		p("  serial    %s", benchDelta(old.Suite.SerialSec, cur.Suite.SerialSec, "s"))
		p("  parallel  %s", benchDelta(old.Suite.ParallelSec, cur.Suite.ParallelSec, "s"))
		p("  speedup   %.2fx → %.2fx", old.Suite.Speedup, cur.Suite.Speedup)
		p("grid (%d → %d points):", old.Grid.Points, cur.Grid.Points)
		p("  serial    sec/point %s  allocs/point %s", benchDelta(old.Grid.Serial.SecPerPoint, cur.Grid.Serial.SecPerPoint, ""), benchDelta(old.Grid.Serial.AllocsPerPoint, cur.Grid.Serial.AllocsPerPoint, ""))
		p("  parallel  sec/point %s  allocs/point %s", benchDelta(old.Grid.Parallel.SecPerPoint, cur.Grid.Parallel.SecPerPoint, ""), benchDelta(old.Grid.Parallel.AllocsPerPoint, cur.Grid.Parallel.AllocsPerPoint, ""))
		p("  speedup   %.2fx → %.2fx", old.Grid.Speedup, cur.Grid.Speedup)
	}
	switch {
	case cur.Replay == nil && old.Replay == nil:
		// Neither entry measured replay; say nothing.
	case cur.Replay == nil:
		p("replay: not measured in the newer entry")
	case old.Replay == nil:
		p("replay: new section, no baseline (%d points, %d captures, %.2fx over direct, %.1f steady allocs/point)",
			cur.Replay.Points, cur.Replay.Captures, cur.Replay.Speedup, cur.Replay.SteadyAllocsPerPoint)
		if cur.Replay.Batch.Sec > 0 {
			p("  batch   %.4g sec/point, %.2fx over direct, %.1f steady allocs/point",
				cur.Replay.Batch.SecPerPoint, cur.Replay.BatchSpeedup, cur.Replay.SteadyBatchAllocsPerPoint)
		}
		if cur.Replay.BatchPar.Sec > 0 {
			p("  batch(par %dw) %.4g sec/point, %.2fx over direct",
				cur.Replay.Workers, cur.Replay.BatchPar.SecPerPoint, cur.Replay.BatchParSpeedup)
		}
	default:
		p("replay (%d → %d points, %d → %d captures):", old.Replay.Points, cur.Replay.Points, old.Replay.Captures, cur.Replay.Captures)
		p("  direct    sec/point %s", benchDelta(old.Replay.Direct.SecPerPoint, cur.Replay.Direct.SecPerPoint, ""))
		p("  replay    sec/point %s  steady allocs/point %s", benchDelta(old.Replay.Replay.SecPerPoint, cur.Replay.Replay.SecPerPoint, ""), benchDelta(old.Replay.SteadyAllocsPerPoint, cur.Replay.SteadyAllocsPerPoint, ""))
		p("  speedup   %.2fx → %.2fx", old.Replay.Speedup, cur.Replay.Speedup)
		switch {
		case cur.Replay.Batch.Sec == 0:
			// Batch leg absent in the newer entry; say nothing.
		case old.Replay.Batch.Sec == 0:
			p("  batch     new leg, no baseline (%.4g sec/point, %.2fx over direct, %.1f steady allocs/point)",
				cur.Replay.Batch.SecPerPoint, cur.Replay.BatchSpeedup, cur.Replay.SteadyBatchAllocsPerPoint)
		default:
			p("  batch     sec/point %s  steady allocs/point %s", benchDelta(old.Replay.Batch.SecPerPoint, cur.Replay.Batch.SecPerPoint, ""), benchDelta(old.Replay.SteadyBatchAllocsPerPoint, cur.Replay.SteadyBatchAllocsPerPoint, ""))
			p("  batch speedup %.2fx → %.2fx", old.Replay.BatchSpeedup, cur.Replay.BatchSpeedup)
		}
		// The parallel batch leg postdates the serial legs; entries
		// written before it simply lack the section.
		switch {
		case cur.Replay.BatchPar.Sec == 0:
			// Parallel leg absent in the newer entry; say nothing.
		case old.Replay.BatchPar.Sec == 0:
			p("  batch(par) new leg, no baseline (%d workers, %.4g sec/point, %.2fx over direct)",
				cur.Replay.Workers, cur.Replay.BatchPar.SecPerPoint, cur.Replay.BatchParSpeedup)
		default:
			p("  batch(par %d → %d workers) sec/point %s", old.Replay.Workers, cur.Replay.Workers,
				benchDelta(old.Replay.BatchPar.SecPerPoint, cur.Replay.BatchPar.SecPerPoint, ""))
			p("  batch(par) speedup %.2fx → %.2fx", old.Replay.BatchParSpeedup, cur.Replay.BatchParSpeedup)
		}
	}
	switch {
	case cur.Serve == nil && old.Serve == nil:
		// Neither entry is a serving-layer run; say nothing.
	case cur.Serve == nil:
		p("serve: not measured in the newer entry")
	case old.Serve == nil:
		p("serve: new section, no baseline (%d requests, %.0f req/s, p50 %.3fms, p99 %.3fms, hit rate %.1f%%)",
			cur.Serve.Requests, cur.Serve.RequestsPerSec, cur.Serve.P50MS, cur.Serve.P99MS, cur.Serve.CacheHitRate*100)
	default:
		p("serve (%d → %d requests):", old.Serve.Requests, cur.Serve.Requests)
		p("  throughput %s", benchDelta(old.Serve.RequestsPerSec, cur.Serve.RequestsPerSec, " req/s"))
		p("  p50 %s  p99 %s", benchDelta(old.Serve.P50MS, cur.Serve.P50MS, "ms"), benchDelta(old.Serve.P99MS, cur.Serve.P99MS, "ms"))
		p("  hit rate %.1f%% → %.1f%%, captures %d → %d",
			old.Serve.CacheHitRate*100, cur.Serve.CacheHitRate*100, old.Serve.StreamCaptures, cur.Serve.StreamCaptures)
	}
	return string(b)
}
