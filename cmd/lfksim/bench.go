package main

// The -bench mode: times the full experiment suite and the standard
// paper grid, serial (GOMAXPROCS=1, single-worker pools) versus
// parallel (all cores), and appends the measurements to a JSON history
// — BENCH_sweep.json in the repository root is this program's output.
// Prior entries are preserved, so the file records the performance
// trajectory across changes rather than only the latest run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/sweep"
)

type benchReport struct {
	GeneratedBy string     `json:"generated_by"`
	Timestamp   string     `json:"timestamp,omitempty"` // RFC 3339 UTC
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Suite       benchSuite `json:"suite"`
	Grid        benchGrid  `json:"grid"`
}

// benchSuite times every experiment (each already sweeping its own
// grid): serial pins GOMAXPROCS to 1 so every pool degenerates to one
// worker; parallel restores the full core count and fans experiments
// out via core.RunAll.
type benchSuite struct {
	Experiments int     `json:"experiments"`
	Checks      int     `json:"checks"`
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

type benchGrid struct {
	Points   int      `json:"points"`
	Serial   benchLeg `json:"serial"`
	Parallel benchLeg `json:"parallel"`
	Speedup  float64  `json:"speedup"`
}

type benchLeg struct {
	Sec            float64 `json:"sec"`
	SecPerPoint    float64 `json:"sec_per_point"`
	PointsPerSec   float64 `json:"points_per_sec"`
	AllocsPerPoint float64 `json:"allocs_per_point"`
	BytesPerPoint  float64 `json:"bytes_per_point"`
}

// standardGrid is the grid the benchmark sweeps: every paper-studied
// kernel across the paper's PE axis, both page sizes, cache on/off.
func standardGrid() []sweep.Point {
	return sweep.Grid{
		Kernels:    loops.PaperSet(),
		PageSizes:  []int{32, 64},
		CacheElems: []int{0, 256},
	}.Points()
}

func runBench(out string) error {
	ctx := context.Background()
	procs := runtime.GOMAXPROCS(0)
	rep := benchReport{
		GeneratedBy: "go run ./cmd/lfksim -bench",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  procs,
		NumCPU:      runtime.NumCPU(),
	}

	// Suite, serial: GOMAXPROCS=1 makes every sweep pool single-worker
	// and removes goroutine parallelism, the honest serial baseline.
	runtime.GOMAXPROCS(1)
	start := time.Now()
	for _, e := range core.Experiments() {
		o, err := e.Run()
		if err != nil {
			runtime.GOMAXPROCS(procs)
			return fmt.Errorf("bench: %s (serial): %w", e.ID, err)
		}
		rep.Suite.Experiments++
		rep.Suite.Checks += len(o.Checks)
	}
	rep.Suite.SerialSec = time.Since(start).Seconds()
	runtime.GOMAXPROCS(procs)

	// Suite, parallel: experiments fan out and each sweeps concurrently.
	start = time.Now()
	if _, err := core.RunAll(ctx); err != nil {
		return fmt.Errorf("bench: parallel suite: %w", err)
	}
	rep.Suite.ParallelSec = time.Since(start).Seconds()
	rep.Suite.Speedup = rep.Suite.SerialSec / rep.Suite.ParallelSec

	// Grid: one homogeneous sweep, the engine's raw throughput.
	pts := standardGrid()
	rep.Grid.Points = len(pts)
	leg := func(workers int) (benchLeg, error) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := sweep.RunN(ctx, workers, pts); err != nil {
			return benchLeg{}, err
		}
		sec := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		n := float64(len(pts))
		return benchLeg{
			Sec:            sec,
			SecPerPoint:    sec / n,
			PointsPerSec:   n / sec,
			AllocsPerPoint: float64(after.Mallocs-before.Mallocs) / n,
			BytesPerPoint:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		}, nil
	}
	var err error
	if rep.Grid.Serial, err = leg(1); err != nil {
		return fmt.Errorf("bench: serial grid: %w", err)
	}
	if rep.Grid.Parallel, err = leg(0); err != nil {
		return fmt.Errorf("bench: parallel grid: %w", err)
	}
	rep.Grid.Speedup = rep.Grid.Serial.Sec / rep.Grid.Parallel.Sec

	payload, err := appendBenchHistory(out, rep)
	if err != nil {
		return err
	}
	return emit(out, payload)
}

// appendBenchHistory renders the benchmark file contents: a JSON array
// of reports, oldest first, with rep appended to whatever history
// already exists at path. A legacy single-object file becomes the
// history's first entry; an unparseable file is an error rather than
// silently overwritten. Writing to stdout (path == "") starts a fresh
// one-entry history.
func appendBenchHistory(path string, rep benchReport) ([]byte, error) {
	var history []json.RawMessage
	if path != "" {
		data, err := os.ReadFile(path)
		switch {
		case os.IsNotExist(err):
			// First run: empty history.
		case err != nil:
			return nil, fmt.Errorf("bench: reading history %s: %w", path, err)
		default:
			if history, err = parseBenchHistory(data); err != nil {
				return nil, fmt.Errorf("bench: %s: %w (move it aside to start fresh)", path, err)
			}
		}
	}
	entry, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	history = append(history, entry)
	payload, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(payload, '\n'), nil
}

// parseBenchHistory accepts both formats: the history array, and the
// legacy single-report object (which becomes a one-entry history).
func parseBenchHistory(data []byte) ([]json.RawMessage, error) {
	var history []json.RawMessage
	if err := json.Unmarshal(data, &history); err == nil {
		return history, nil
	}
	var single map[string]json.RawMessage
	if err := json.Unmarshal(data, &single); err != nil {
		return nil, fmt.Errorf("existing file is neither a benchmark history array nor a report object")
	}
	compact, err := json.Marshal(single)
	if err != nil {
		return nil, err
	}
	return []json.RawMessage{compact}, nil
}
