// Command lfksimd is the classification daemon: the paper's
// partitioning/classification machinery served over HTTP by
// internal/serve, so consumers reach the sweep/replay engines through
// a long-lived service instead of shelling out to lfksim.
//
// Usage:
//
//	lfksimd                          serve on :8077
//	lfksimd -addr :9000              serve elsewhere
//	lfksimd -workers 8 -queue 32     cap the pool and admission queue
//	lfksimd -capture-dir /var/lib/lfksimd
//	                                 persist reference streams to disk
//	                                 and warm-start from them on boot
//	lfksimd -addr-file /run/lfksimd.addr
//	                                 publish the bound address (useful
//	                                 with -addr 127.0.0.1:0)
//	lfksimd -router 3                front a 3-shard cluster: spawn 3
//	                                 shard processes and route/fail-over
//	                                 between them (docs/CLUSTER.md)
//	lfksimd -loadgen                 start an in-process server and
//	                                 hammer it with a mixed
//	                                 duplicate/unique request stream
//	lfksimd -loadgen -target http://host:8077
//	                                 hammer a running daemon instead
//	lfksimd -loadgen -o BENCH_sweep.json
//	                                 also append a serve section to the
//	                                 benchmark history
//
// Endpoints: POST /v1/classify, POST /v1/sweep, POST /v1/compile
// (docs/COMPILE.md), GET /v1/kernels (?compiled=1 for the registry),
// GET /healthz, GET /metrics, GET /debug/pprof/. See docs/SERVING.md.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: the listener stops,
// in-flight requests drain (bounded by -drain), and the engine's
// worker pool exits before the process does.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchio"
	"repro/internal/cluster"
	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/refstream/store"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "max admitted in-flight requests before 429 (0 = 4x workers)")
		results = flag.Int("result-cache", 0, "result-cache capacity in bodies (0 = 4096)")
		streams = flag.Int("stream-cache", 0, "reference-stream cache capacity (0 = 64)")
		maxPts  = flag.Int("max-sweep-points", 0, "largest sweep grid a request may expand to (0 = 4096)")
		dline   = flag.Duration("deadline", 0, "default per-request deadline (0 = derive from the request's NPE and problem size)")
		drain   = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")

		captureDir = flag.String("capture-dir", "", "disk-backed capture store directory (empty = in-memory only)")
		addrFile   = flag.String("addr-file", "", "publish the bound listen address to this file (temp + rename)")
		router     = flag.Int("router", 0, "front a sharded cluster: spawn this many shard processes and route between them (0 = single-node)")

		loadgen = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target  = flag.String("target", "", "loadgen: daemon base URL (empty = start an in-process server)")
		reqs    = flag.Int("requests", 2000, "loadgen: total requests")
		conc    = flag.Int("concurrency", 16, "loadgen: concurrent clients")
		dup     = flag.Float64("dup", 0.9, "loadgen: fraction of requests drawn from the hot set [0,1]")
		sweepEv = flag.Int("sweep-every", 64, "loadgen: every k-th request is a /v1/sweep (0 = none)")
		seed    = flag.Int64("seed", 1, "loadgen: request-mix seed")
		retries = flag.Int("retries", 0, "loadgen: max re-sends after a transient 502/503 (0 = 2, negative = disabled)")
		out     = flag.String("o", "", "loadgen: append a serve entry to this BENCH JSON history")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if *dup < 0 || *dup > 1 {
		fail(fmt.Errorf("-dup must be in [0,1], got %g", *dup))
	}

	opts := serve.Options{
		Workers:            *workers,
		MaxInflight:        *queue,
		ResultCacheEntries: *results,
		StreamCacheEntries: *streams,
		MaxSweepPoints:     *maxPts,
		DefaultDeadline:    *dline,
	}

	var err error
	switch {
	case *loadgen:
		err = runLoadgen(opts, *target, *reqs, *conc, *dup, *sweepEv, *seed, *retries, *out)
	case *router > 0:
		err = runRouter(opts, *addr, *drain, *router, *captureDir, *addrFile)
	default:
		err = runDaemon(opts, *addr, *drain, *captureDir, *addrFile)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lfksimd:", err)
	os.Exit(1)
}

// publishAddr writes the bound address to path via temp + rename, so a
// reader never observes a partial write (the same contract the cluster
// supervisor relies on for shard discovery).
func publishAddr(path string, addr net.Addr) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr.String()+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// openStore attaches a disk-backed capture store when dir is set. The
// kernel registry's resolver lets persisted captures of compiled
// ("u:...") kernels decode once their kernel is re-registered, turning
// compile-after-restart into a warm start.
func openStore(opts *serve.Options, dir string, reg *obs.Registry, kreg *kernelreg.Registry) error {
	if dir == "" {
		return nil
	}
	st, err := store.Open(dir, reg)
	if err != nil {
		return fmt.Errorf("opening capture store: %w", err)
	}
	st.SetResolver(kreg.Resolve)
	opts.CaptureStore = st
	fmt.Fprintf(os.Stderr, "lfksimd: capture store %s (%d streams on disk)\n", st.Dir(), st.Len())
	return nil
}

// runDaemon serves until SIGINT/SIGTERM, then drains: listener closed,
// in-flight HTTP requests completed (bounded by drain), engine worker
// pool exited.
func runDaemon(opts serve.Options, addr string, drain time.Duration, captureDir, addrFile string) error {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	opts.Metrics = reg
	opts.Registry = kernelreg.New(kernelreg.Limits{}, reg)
	if err := openStore(&opts, captureDir, reg, opts.Registry); err != nil {
		return err
	}
	srv := serve.New(opts)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	if addrFile != "" {
		if err := publishAddr(addrFile, ln.Addr()); err != nil {
			return fmt.Errorf("publishing address: %w", err)
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "lfksimd: serving http://%s (POST /v1/classify /v1/sweep /v1/compile; GET /v1/kernels /healthz /metrics /debug/trace /debug/pprof/)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "lfksimd: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "lfksimd: clean shutdown")
	return nil
}

// runRouter fronts a sharded cluster: spawns shards re-execed lfksimd
// processes (each a plain single-node daemon publishing its ephemeral
// address through an addr file), routes classify/sweep traffic across
// them with failover, and degrades to local execution when every shard
// is down. See docs/CLUSTER.md.
func runRouter(opts serve.Options, addr string, drain time.Duration, shards int, captureDir, addrFile string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	supDir, err := os.MkdirTemp("", "lfksimd-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(supDir)

	sup, err := cluster.StartSupervisor(cluster.SupervisorOptions{
		Shards: shards,
		Dir:    supDir,
		Command: func(id int, shardAddrFile string) *exec.Cmd {
			args := []string{"-addr", "127.0.0.1:0", "-addr-file", shardAddrFile}
			if captureDir != "" {
				// All shards share one content-addressed store directory:
				// writes are temp+rename and peers pick up each other's
				// captures on rescan, so sharing is safe and maximizes reuse.
				args = append(args, "-capture-dir", captureDir)
			}
			cmd := exec.Command(exe, args...)
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if err != nil {
		return fmt.Errorf("starting shards: %w", err)
	}
	defer sup.Stop()

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	local := opts
	local.Metrics = reg
	local.Registry = kernelreg.New(kernelreg.Limits{}, reg)
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:  shards,
		AddrOf:  sup.Addr,
		PIDOf:   sup.PID,
		Local:   local,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	if addrFile != "" {
		if err := publishAddr(addrFile, ln.Addr()); err != nil {
			return fmt.Errorf("publishing address: %w", err)
		}
	}
	hs := &http.Server{Handler: rt.Handler()}
	fmt.Fprintf(os.Stderr, "lfksimd: routing http://%s across %d shards\n", ln.Addr(), shards)
	for sh := 0; sh < sup.Shards(); sh++ {
		fmt.Fprintf(os.Stderr, "lfksimd:   shard %d at %s (pid %d)\n", sh, sup.Addr(sh), sup.PID(sh))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "lfksimd: shutting down router and shards")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// runLoadgen hammers target (or an in-process server when target is
// empty), prints the report, and appends a serve entry to the BENCH
// history at out.
func runLoadgen(opts serve.Options, target string, requests, concurrency int, dup float64, sweepEvery int, seed int64, retries int, out string) error {
	ctx := context.Background()
	if target == "" {
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		opts.Metrics = reg
		// The in-process server exists only to absorb synthetic load;
		// thousands of access-log lines would drown the report.
		opts.AccessLog = io.Discard
		srv := serve.New(opts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(sctx)
			srv.Close()
		}()
		target = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "lfksimd: loadgen against in-process server %s\n", target)
	}

	rep, err := serve.Load(ctx, serve.LoadOptions{
		BaseURL:     target,
		Requests:    requests,
		Concurrency: concurrency,
		DupFraction: dup,
		SweepEvery:  sweepEvery,
		Seed:        seed,
		MaxRetries:  retries,
	})
	if err != nil {
		return err
	}
	printReport(rep)
	if err := printServerQuantiles(ctx, target); err != nil {
		fmt.Fprintf(os.Stderr, "lfksimd: server-side quantiles unavailable: %v\n", err)
	}

	if out != "" {
		entry := struct {
			GeneratedBy string            `json:"generated_by"`
			Timestamp   string            `json:"timestamp"`
			GoVersion   string            `json:"go_version"`
			GOMAXPROCS  int               `json:"gomaxprocs"`
			NumCPU      int               `json:"num_cpu"`
			Serve       *serve.LoadReport `json:"serve"`
		}{
			GeneratedBy: "go run ./cmd/lfksimd -loadgen",
			Timestamp:   time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Serve:       rep,
		}
		payload, err := benchio.Append(out, entry)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, payload, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func printReport(r *serve.LoadReport) {
	fmt.Printf("loadgen: %d requests (%d sweeps), concurrency %d, dup %.2f\n",
		r.Requests, r.SweepRequests, r.Concurrency, r.DupFraction)
	fmt.Printf("  wall %.3fs, %.0f req/s\n", r.WallSec, r.RequestsPerSec)
	fmt.Printf("  latency p50 %.3fms  p99 %.3fms  max %.3fms\n", r.P50MS, r.P99MS, r.MaxMS)
	fmt.Printf("  cache hit rate %.1f%%, %d dedup waits, %d points executed, %d captures\n",
		r.CacheHitRate*100, r.DedupWaits, r.PointsExecuted, r.StreamCaptures)
	if r.Errors > 0 || r.Rejected > 0 || r.Retries > 0 {
		fmt.Printf("  %d errors, %d rejected (429), %d retries\n", r.Errors, r.Rejected, r.Retries)
	}
	if len(r.Stages) > 0 {
		fmt.Printf("  server-side stage latency (histogram estimates over this run):\n")
		names := make([]string, 0, len(r.Stages))
		for name := range r.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			q := r.Stages[name]
			stage := strings.TrimSuffix(strings.TrimPrefix(name, "serve.stage."), "_us")
			fmt.Printf("    %-14s p50 %8.3fms  p99 %8.3fms  p999 %8.3fms  (n=%d)\n",
				stage, q.P50MS, q.P99MS, q.P999MS, q.Count)
		}
	}
}

// printServerQuantiles reports the daemon's own request-latency view —
// the obs histograms on /metrics — alongside the client-side numbers.
func printServerQuantiles(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	h, ok := snap.Histograms[serve.MetricClassifyLatencyUS]
	if !ok || h.Count == 0 {
		return fmt.Errorf("no %s histogram", serve.MetricClassifyLatencyUS)
	}
	fmt.Printf("  server-observed classify latency ~p50 %.3fms  ~p99 %.3fms (histogram estimate, n=%d)\n",
		h.Quantile(0.50)/1000, h.Quantile(0.99)/1000, h.Count)
	return nil
}
