package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestLintAcceptsObsExposition(t *testing.T) {
	// The end-to-end pairing the CI smoke relies on: whatever
	// obs.WritePrometheus emits must pass the checker.
	r := obs.NewRegistry()
	r.Counter("serve.classify_requests").Add(7)
	r.Gauge("build.info").Set(1)
	h := r.Histogram("serve.stage.replay_us", obs.MicrosBuckets)
	for _, v := range []int64{1, 5, 50, 500, 5000, 1 << 30} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := obs.WritePrometheus(&b, r.Snapshot(), map[string]string{
		"serve.classify_requests": "classify requests",
	}); err != nil {
		t.Fatal(err)
	}
	problems, samples := Lint(b.String())
	if len(problems) != 0 {
		t.Fatalf("obs exposition rejected: %v\n%s", problems, b.String())
	}
	if samples == 0 {
		t.Fatal("no samples counted")
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared metric": "orphan_metric 5\n",
		"bad sample line":   "# TYPE m counter\nm not-a-number\n",
		"bad name":          "# TYPE m counter\nm 1\n9bad 2\n",
		"missing inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n",
		"bounds not increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"duplicate type": "# TYPE m counter\n# TYPE m counter\nm 1\n",
	}
	for name, doc := range cases {
		if problems, _ := Lint(doc); len(problems) == 0 {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, doc)
		}
	}
}

func TestLintAcceptsWellFormed(t *testing.T) {
	doc := "# HELP m a counter\n# TYPE m counter\nm 5\n" +
		"# TYPE g gauge\ng{label=\"x\"} -3\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"4\"} 3\nh_bucket{le=\"+Inf\"} 4\nh_sum 10\nh_count 4\n"
	problems, samples := Lint(doc)
	if len(problems) != 0 {
		t.Fatalf("well-formed exposition rejected: %v", problems)
	}
	if samples != 7 {
		t.Fatalf("samples = %d, want 7", samples)
	}
}
