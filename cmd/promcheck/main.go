// Command promcheck validates a Prometheus text-exposition (format
// 0.0.4) stream on stdin: every sample line must match the exposition
// grammar, every metric must be declared by a preceding # TYPE line,
// and every histogram must have cumulative buckets ending in an +Inf
// bucket whose value equals the _count sample. CI pipes the daemon's
// GET /metrics?format=prom through it so a malformed exposition fails
// the smoke job instead of a scrape in production.
//
// Usage:
//
//	curl -s localhost:8077/metrics?format=prom | go run ./cmd/promcheck
//
// Exit status 0 when the stream parses, 1 with one line per problem on
// stderr otherwise.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	problems, samples, err := check(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: reading stdin: %v\n", err)
		os.Exit(1)
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "promcheck: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d samples)\n", samples)
}

func check(r io.Reader) ([]string, int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	problems, samples := Lint(string(data))
	return problems, samples, nil
}
