package main

// lint.go — the exposition checks themselves, kept separate from the
// stdin plumbing so tests can drive them with strings.

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	typeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) `)
	// sampleRe matches one sample line: name, optional label set,
	// decimal value (integer, float or +Inf/-Inf/NaN).
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)
	leRe     = regexp.MustCompile(`le="([^"]*)"`)
)

// histState accumulates one histogram's samples for the cumulativity
// and +Inf checks.
type histState struct {
	buckets  []bucket
	hasInf   bool
	infCount float64
	count    float64
	hasCount bool
}

type bucket struct {
	le    float64
	value float64
}

// Lint checks one exposition document and returns the list of problems
// (empty = valid) plus the number of sample lines seen.
func Lint(doc string) (problems []string, samples int) {
	types := map[string]string{}
	hists := map[string]*histState{}

	// base maps a histogram's series names (_bucket/_sum/_count) back to
	// the declared histogram name.
	base := func(name string) (string, string) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			b := strings.TrimSuffix(name, suffix)
			if b != name && types[b] == "histogram" {
				return b, suffix
			}
		}
		return "", ""
	}

	for ln, line := range strings.Split(doc, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					problems = append(problems, fmt.Sprintf("line %d: duplicate # TYPE for %s", lineNo, m[1]))
				}
				types[m[1]] = m[2]
				if m[2] == "histogram" {
					hists[m[1]] = &histState{}
				}
				continue
			}
			if helpRe.MatchString(line) {
				continue
			}
			problems = append(problems, fmt.Sprintf("line %d: malformed comment line %q", lineNo, line))
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, fmt.Sprintf("line %d: malformed sample line %q", lineNo, line))
			continue
		}
		samples++
		name, labels, valueStr := m[1], m[2], m[3]
		value, _ := strconv.ParseFloat(valueStr, 64)

		declared := types[name] != ""
		hbase, suffix := base(name)
		if !declared && hbase == "" {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no preceding # TYPE", lineNo, name))
			continue
		}
		if hbase == "" {
			continue // plain counter/gauge sample; nothing more to check
		}
		h := hists[hbase]
		switch suffix {
		case "_bucket":
			le := leRe.FindStringSubmatch(labels)
			if le == nil {
				problems = append(problems, fmt.Sprintf("line %d: %s_bucket without le label", lineNo, hbase))
				continue
			}
			if le[1] == "+Inf" {
				h.hasInf = true
				h.infCount = value
				continue
			}
			bound, err := strconv.ParseFloat(le[1], 64)
			if err != nil {
				problems = append(problems, fmt.Sprintf("line %d: unparseable le=%q", lineNo, le[1]))
				continue
			}
			h.buckets = append(h.buckets, bucket{le: bound, value: value})
		case "_count":
			h.count = value
			h.hasCount = true
		}
	}

	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if !h.hasInf {
			problems = append(problems, fmt.Sprintf("histogram %s: missing le=\"+Inf\" bucket", name))
			continue
		}
		prev := 0.0
		for i, b := range h.buckets {
			if i > 0 && b.le <= h.buckets[i-1].le {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket bounds not increasing at le=%g", name, b.le))
			}
			if b.value < prev {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket counts not cumulative at le=%g (%g < %g)", name, b.le, b.value, prev))
			}
			prev = b.value
		}
		if h.infCount < prev {
			problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket %g below last bucket %g", name, h.infCount, prev))
		}
		if h.hasCount && h.count != h.infCount {
			problems = append(problems, fmt.Sprintf("histogram %s: _count %g != +Inf bucket %g", name, h.count, h.infCount))
		}
	}
	return problems, samples
}
