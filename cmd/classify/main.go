// Command classify reproduces the paper's §7.1 access-distribution
// taxonomy: it classifies every Livermore kernel dynamically (from
// counting-simulation evidence) and the IR sample programs statically
// (from affine subscript analysis), reporting agreement with the
// classes the paper assigns.
//
// Usage:
//
//	classify              dynamic classification of all kernels
//	classify -kernel k2   one kernel
//	classify -static      static classification of the IR samples
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classify"
	"repro/internal/ir"
	"repro/internal/loops"
)

func main() {
	var (
		kernel  = flag.String("kernel", "", "classify one kernel")
		static_ = flag.Bool("static", false, "statically classify the IR sample programs")
		n       = flag.Int("n", 0, "problem size (0 = kernel default)")
	)
	flag.Parse()

	switch {
	case *static_:
		if err := staticReport(); err != nil {
			fail(err)
		}
	case *kernel != "":
		k, err := loops.ByKey(*kernel)
		if err != nil {
			fail(err)
		}
		if err := dynamicReport([]*loops.Kernel{k}, *n); err != nil {
			fail(err)
		}
	default:
		if err := dynamicReport(loops.All(), *n); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}

func dynamicReport(ks []*loops.Kernel, n int) error {
	reports, err := classify.Kernels(ks, n)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-48s %-6s %-9s %9s %8s %8s %8s\n",
		"kernel", "name", "paper", "measured", "nc16%", "c8%", "c16%", "c64%")
	agreements, judged := 0, 0
	for _, r := range reports {
		fmt.Printf("%-10s %-48s %-6s %-9s %9.2f %8.2f %8.2f %8.2f\n",
			r.Key, r.Name, r.Paper, r.Measured,
			r.Evidence.NoCache16, r.Evidence.Cached8, r.Evidence.Cached16, r.Evidence.Cached64)
		if r.Paper != loops.ClassUnknown {
			judged++
			if r.Paper == r.Measured {
				agreements++
			}
		}
	}
	fmt.Printf("\nagreement with the paper's taxonomy: %d/%d\n", agreements, judged)
	return nil
}

func staticReport() error {
	for _, p := range ir.Samples() {
		cls, per, err := classify.Static(p, 64)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		fmt.Printf("%-14s %-3s\n", p.Name, cls)
		for _, sc := range per {
			fmt.Printf("    %-3s %s\n", sc.Class, sc.Stmt)
		}
	}
	return nil
}
