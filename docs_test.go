package repro

import (
	"context"
	"os"
	"testing"

	"repro/internal/core"
)

// TestExperimentsDocFresh regenerates the EXPERIMENTS.md document and
// requires the committed file to match byte-for-byte. The document is a
// deterministic function of the experiment outcomes, so any drift means
// either the experiments changed without regenerating the doc, or the
// doc was edited by hand.
func TestExperimentsDocFresh(t *testing.T) {
	committed, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("read committed doc: %v", err)
	}
	outs, err := core.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := core.RenderMarkdown(outs)
	if string(committed) != want {
		t.Errorf("EXPERIMENTS.md is stale; regenerate it with:\n\t%s\n(or `make docs`)", core.DocsCommand)
	}
}
