# Build/test/docs pipeline for the reproduction. The generated
# artifacts (EXPERIMENTS.md, BENCH_sweep.json) are committed; `make
# docs` / `make bench` regenerate them and `make test` verifies
# EXPERIMENTS.md is fresh.

GO ?= go

.PHONY: all build test race bench docs clean

all: build test

build:
	$(GO) build ./...

# Tier-1 suite plus a race-detector pass over the concurrent layers.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/sweep ./internal/core

race:
	$(GO) test -race ./...

# Regenerate BENCH_sweep.json: suite + standard-grid timings, serial
# vs parallel, with per-point allocation counts.
bench:
	$(GO) run ./cmd/lfksim -bench -o BENCH_sweep.json

# Regenerate EXPERIMENTS.md from the experiment outcomes.
docs:
	$(GO) run ./cmd/lfksim -docs -o EXPERIMENTS.md

clean:
	$(GO) clean ./...
