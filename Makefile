# Build/test/docs pipeline for the reproduction. The generated
# artifacts (EXPERIMENTS.md, BENCH_sweep.json) are committed; `make
# docs` / `make bench` regenerate them and `make test` verifies
# EXPERIMENTS.md is fresh.

GO ?= go

.PHONY: all build test race bench bench-batch loadbench serve docs clean

all: build test

build:
	$(GO) build ./...

# Tier-1 suite plus a race-detector pass over the concurrent layers
# (kept in lockstep with .github/workflows/ci.yml).
test:
	$(GO) test ./...
	$(GO) test -race ./internal/sweep ./internal/machine ./internal/obs ./internal/core ./internal/refstream ./internal/refstream/store ./internal/serve ./internal/hostproc ./internal/cluster

race:
	$(GO) test -race ./...

# Append to BENCH_sweep.json: suite + standard-grid timings, serial
# vs parallel, with per-point allocation counts. The file is a JSON
# history array; each run appends an entry, preserving the trajectory.
bench:
	$(GO) run ./cmd/lfksim -bench -o BENCH_sweep.json

# Compare the four engines on one capture group (direct execution vs
# single-config replay vs one batch pass vs a partitioned batch pass,
# the latter at 1/4/8 workers to show the scaling curve), then run the
# batch perf gates that CI enforces: a batch pass must never be slower
# than replaying the group one configuration at a time, and with
# GOMAXPROCS>1 a partitioned pass must never be slower than the serial
# one (docs/PERF.md).
bench-batch:
	$(GO) test -run=NONE -bench='BenchmarkGroup(Direct|SingleReplay|BatchReplay)$$' -benchmem ./internal/refstream
	$(GO) test -run=NONE -bench=BenchmarkGroupBatchReplayPar -benchmem -cpu=1,4,8 ./internal/refstream
	REFSTREAM_PERF_GATE=1 $(GO) test -run 'TestBatchNoSlowerThanSingleReplay|TestBatchParNoSlowerThanSerial' -count=1 -v ./internal/refstream

# Append a "serve" section to the same history: throughput, latency
# quantiles and cache hit rate of the classification service under the
# deterministic load mix (docs/SERVING.md).
loadbench:
	$(GO) run ./cmd/lfksimd -loadgen -o BENCH_sweep.json

# Run the classification daemon on its default address.
serve:
	$(GO) run ./cmd/lfksimd

# Regenerate EXPERIMENTS.md from the experiment outcomes.
docs:
	$(GO) run ./cmd/lfksim -docs -o EXPERIMENTS.md

clean:
	$(GO) clean ./...
