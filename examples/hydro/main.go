// Hydro: a walk through Figure 1 of the paper — the skewed-distribution
// class — sweeping PEs and page sizes with and without the page cache,
// rendered as a table and an ASCII chart.
//
//	go run ./examples/hydro
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Reproducing Figure 1: Hydro Fragment, skew 10/11.")
	fmt.Println("X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))")
	fmt.Println()
	fmt.Println("Y(k) is matched (same page as the write) so it is always local;")
	fmt.Println("ZX(k+10) and ZX(k+11) cross into the next PE's page for the last")
	fmt.Println("21 of every 32 iterations. Without a cache each crossing is a")
	fmt.Println("remote read (21/96 = 21.9%); with the cache the first crossing")
	fmt.Println("fetches the whole page and the rest hit locally (1/96 = 1.04%).")
	fmt.Println()

	o, err := repro.RunExperiment("fig1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(o.Text)
	if o.Figure != nil {
		fmt.Println(o.Figure.Chart(12))
	}
	for _, c := range o.Checks {
		mark := "ok"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  [%-4s] %s — %s\n", mark, c.Name, c.Detail)
	}
}
