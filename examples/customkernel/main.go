// Customkernel: bring your own loop nest. Write a conventional
// (non-single-assignment) Fortran-style loop in the affine IR, let the
// §5 conversion tool rewrite it, classify its access pattern, and run
// it on the simulated machine.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/classify"
	"repro/internal/ir"
	"repro/internal/loops"
	"repro/internal/sim"
)

func main() {
	// A conventional 5-point-ish smoother that updates U in place and
	// accumulates a residual into a fixed cell — two single-assignment
	// violations at once:
	//
	//   DO i = 1, n
	//     U(i) = 0.25*U(i-1) + 0.5*U(i) + 0.25*U(i+1)
	//     R(0) = R(0) + U(i)
	p := &ir.Program{
		Name: "smoother",
		Arrays: []ir.ArrayDecl{
			{Name: "U", Dims: []ir.Extent{ir.NPlus(2)}, Input: true},
			{Name: "R", Dims: []ir.Extent{ir.Fixed(1)}, Input: true},
		},
		Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
				&ir.Assign{
					LHS: ir.R("U", ir.V("i")),
					RHS: ir.RHS{Terms: []ir.Term{
						{Coef: 0.25, Read: ir.R("U", ir.V("i").PlusC(-1))},
						{Coef: 0.5, Read: ir.R("U", ir.V("i"))},
						{Coef: 0.25, Read: ir.R("U", ir.V("i").PlusC(1))},
					}},
				},
				&ir.Assign{
					LHS: ir.R("R", ir.C(0)),
					RHS: ir.RHS{Terms: []ir.Term{
						{Coef: 1, Read: ir.R("R", ir.C(0))},
						{Coef: 1, Read: ir.R("U", ir.V("i"))},
					}},
				},
			}},
		},
	}

	fmt.Println("original (conventional Fortran style):")
	fmt.Println(p)
	for _, d := range p.CheckSA() {
		fmt.Println("  ", d)
	}

	// The §5 conversion tool: version renaming + carried-scalar
	// expansion.
	res, err := repro.ConvertToSA(p, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconverted to single assignment:")
	fmt.Println(res.Program)
	for _, rw := range res.Rewrites {
		fmt.Printf("  %s: %s -> %s\n", rw.Kind, rw.Array, rw.NewArray)
	}
	fmt.Printf("  extra storage: %d elements\n", res.ExtraElems)

	// Static classification straight off the subscripts.
	cls, per, err := classify.Static(res.Program, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic access-pattern class: %s\n", cls)
	for _, sc := range per {
		fmt.Printf("  %-3s %s\n", sc.Class, sc.Stmt)
	}

	// Compile and simulate like any Livermore kernel.
	k, err := res.Program.Kernel(512)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := loops.RunSeq(k, 512); err != nil {
		log.Fatal(err) // would catch any residual SA violation
	}
	simRes, err := sim.Run(k, 512, sim.PaperConfig(8, 32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated on 8 PEs, ps 32, 256-elem cache: %.2f%% of reads remote\n",
		simRes.RemotePercent())
	fmt.Printf("  %s\n", simRes.Totals)
}
