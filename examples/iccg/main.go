// ICCG: the cyclic-distribution class (Figure 2), plus trace-driven
// cache replay — record the access trace once, then re-evaluate cache
// sizes without re-running the kernel.
//
//	go run ./examples/iccg
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	fmt.Println("ICCG (Livermore kernel 2): the write index advances half as fast")
	fmt.Println("as the read index, so reads jump from page to page. Without a")
	fmt.Println("cache nearly every read is remote; the page cache collapses it.")
	fmt.Println()

	for _, npe := range []int{2, 8, 32} {
		nc, err := repro.Simulate("k2", 1024, repro.NoCacheConfig(npe, 32))
		if err != nil {
			log.Fatal(err)
		}
		wc, err := repro.Simulate("k2", 1024, repro.PaperConfig(npe, 32))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d PEs: no cache %6.2f%% remote | 256-elem cache %5.2f%%\n",
			npe, nc.Totals.RemotePercent(), wc.Totals.RemotePercent())
	}

	// Record the classified access trace once...
	k, err := loops.ByKey("k2")
	if err != nil {
		log.Fatal(err)
	}
	buf := &trace.Buffer{}
	cfg := sim.PaperConfig(8, 32)
	cfg.Tracer = buf
	if _, err := sim.Run(k, 1024, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d accesses; replaying the read stream through other caches:\n", buf.Len())

	// ...then replay it through different cache sizes without
	// re-executing the kernel (classic trace-driven cache simulation).
	for _, ce := range []int{0, 64, 256, 1024} {
		c, err := trace.ReplayCache(buf, 8, ce, 32, cache.LRU)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cache %5d elements -> %6.2f%% remote\n", ce, c.RemotePercent())
	}

	j := trace.Jumpiness(buf)
	fmt.Printf("\npage jumpiness: %.1f%% of consecutive same-array reads change page\n", j.JumpPercent)
	fmt.Println("(compare ~3% for the skewed Hydro Fragment: this is what 'cyclic' means)")
}
