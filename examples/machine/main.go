// Machine: run a kernel on the concurrent MIMD engine — one goroutine
// per PE, I-structure memory, real page request/reply messages — and
// verify that single assignment alone synchronizes it. Also
// demonstrates the §5 host-processor re-initialization protocol.
//
//	go run ./examples/machine
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/hostproc"
	"repro/internal/loops"
)

func main() {
	// First Sum (kernel 11) is a running-sum recurrence: PE p+1 cannot
	// produce its first element until PE p finishes its last. No locks
	// or barriers appear anywhere: deferred reads on the tagged memory
	// pipeline the PEs automatically.
	const n = 2048
	res, err := repro.Execute("k11", n, repro.DefaultMachine(8, 32))
	if err != nil {
		log.Fatal(err)
	}
	seq, err := loops.RunSeq(mustKernel("k11"), n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("First Sum on 8 concurrent PEs (goroutines + messages):")
	fmt.Printf("  page requests over the network: %d (replies: %d)\n",
		res.PageRequests, res.PageReplies)
	fmt.Printf("  network bytes: %d, total hops: %d\n", res.Net.Bytes, res.Net.Hops)
	got := res.Values["X"][n]
	want := seq.Values["X"][n]
	fmt.Printf("  X[%d] = %.6f (sequential reference: %.6f) — match: %v\n",
		n, got, want, got == want)
	fmt.Printf("  access mix: %s\n\n", res.Totals)

	// Host-processor re-initialization (§5): all PEs must be done with
	// an array version before any PE may produce the next one.
	const npe = 4
	coord, err := hostproc.New(npe, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := coord.Register(0, -1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Host-processor re-initialization across 4 PEs, 3 rounds:")
	var wg sync.WaitGroup
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for round := 1; round <= 3; round++ {
				v, err := coord.RequestReinit(0, pe)
				if err != nil {
					log.Fatal(err)
				}
				if pe == 0 {
					fmt.Printf("  round %d: all PEs synchronized, array version now %d\n", round, v)
				}
			}
		}(pe)
	}
	wg.Wait()
	fmt.Printf("  protocol messages: %d\n", coord.MessagesSent())
}

func mustKernel(key string) *loops.Kernel {
	k, err := loops.ByKey(key)
	if err != nil {
		log.Fatal(err)
	}
	return k
}
