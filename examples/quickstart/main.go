// Quickstart: partition one Livermore loop over a simulated
// loosely-coupled MIMD machine and see where its reads land.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The Hydro Fragment (Livermore kernel 1):
	//   X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))
	// Arrays are cut into 32-element pages; page p lives on PE p mod 8;
	// each PE computes exactly the elements it owns (owner-computes).
	cfg := repro.PaperConfig(8, 32) // 8 PEs, page size 32, 256-elem LRU cache
	res, err := repro.Simulate("k1", 1000, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Hydro Fragment on 8 PEs, page size 32, 256-element cache:")
	fmt.Printf("  writes       %7d  (always local: owner computes)\n", res.Totals.Writes)
	fmt.Printf("  local reads  %7d\n", res.Totals.LocalReads)
	fmt.Printf("  cached reads %7d  (remote pages fetched once, then reused)\n", res.Totals.CachedReads)
	fmt.Printf("  remote reads %7d\n", res.Totals.RemoteReads)
	fmt.Printf("  => %.2f%% of reads are remote\n\n", res.Totals.RemotePercent())

	// Without the cache every boundary-crossing read goes to the wire.
	nc, err := repro.Simulate("k1", 1000, repro.NoCacheConfig(8, 32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Same machine without the page cache: %.2f%% remote\n", nc.Totals.RemotePercent())
	fmt.Println("(the paper's §8 reports this exact pair: ~22% cut to ~1%)")
}
