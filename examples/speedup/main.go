// Speedup: the §9 future-work items made concrete — price a simulated
// run with an abstract cost model to estimate execution time, speedup
// and network contention per access class and topology.
//
//	go run ./examples/speedup
package main

import (
	"fmt"
	"log"

	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/sim"
)

func main() {
	cm := sim.DefaultCostModel()
	fmt.Println("Estimated speedup on a 2-D mesh (ps 32, 256-element cache):")
	fmt.Printf("%-22s %6s %8s %8s %8s\n", "kernel (class)", "PEs", "speedup", "effic.", "hotlink")
	for _, key := range []string{"k14frag", "k1", "k2", "k18", "k6"} {
		k, err := loops.ByKey(key)
		if err != nil {
			log.Fatal(err)
		}
		for _, npe := range []int{4, 16, 64} {
			res, err := sim.Run(k, 0, sim.PaperConfig(npe, 32))
			if err != nil {
				log.Fatal(err)
			}
			topo := network.NewMesh2D(npe)
			tm := res.Estimate(cm, topo)
			cont := res.Contention(cm, topo)
			fmt.Printf("%-22s %6d %7.2fx %7.1f%% %8.4f\n",
				fmt.Sprintf("%s (%s)", key, k.Class), npe, tm.Speedup,
				100*tm.Efficiency, cont.Utilization)
		}
	}
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - MD/SD loops scale nearly linearly and barely load the network")
	fmt.Println("    (the abstract's 'degradation in network performance ... is minimal');")
	fmt.Println("  - the CD loop scales once the cache captures its cycle;")
	fmt.Println("  - the RD loop slows DOWN: 40-cycle remote reads on ~50% of its")
	fmt.Println("    accesses plus its triangular work distribution (the paper's §7.2")
	fmt.Println("    caveat about skewed balance) erase the parallelism.")
}
