// Package repro is a reproduction of Bic, Nagel & Roy, "Automatic
// Data/Program Partitioning Using the Single Assignment Principle"
// (UC Irvine TR 89-08, 1989): a loosely-coupled MIMD machine in which
// single assignment makes data/program partitioning, synchronization
// and caching automatic.
//
// The package is a facade over the internal subsystems:
//
//   - Simulate runs the paper's access-counting simulator over a
//     Livermore kernel and classifies every access as write / local /
//     cached / remote (internal/sim);
//   - Execute runs the same kernel on a concurrent engine with one
//     goroutine per PE and real message-passing, verifying that single
//     assignment alone synchronizes the machine (internal/machine);
//   - Experiments regenerates every figure and table of the paper's
//     evaluation, each with machine-checked shape criteria
//     (internal/core);
//   - Classify reproduces the §7 access-distribution taxonomy
//     (internal/classify);
//   - ConvertToSA is the §5 automatic single-assignment conversion
//     tool over the affine loop IR (internal/convert, internal/ir);
//   - NewServer turns the sweep/replay machinery into a long-lived
//     HTTP classification service — the daemon behind cmd/lfksimd
//     (internal/serve, docs/SERVING.md).
package repro

import (
	"context"

	"repro/internal/classify"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Kernel is a Livermore Loop in single-assignment form.
type Kernel = loops.Kernel

// Class is the paper's access-distribution taxonomy (MD/SD/CD/RD).
type Class = loops.Class

// Access-distribution classes.
const (
	MD = loops.MD
	SD = loops.SD
	CD = loops.CD
	RD = loops.RD
)

// SimConfig configures the counting simulator.
type SimConfig = sim.Config

// SimResult is a counting-simulation outcome.
type SimResult = sim.Result

// MachineConfig configures the concurrent execution engine.
type MachineConfig = machine.Config

// MachineResult is a concurrent-execution outcome.
type MachineResult = machine.Result

// FaultConfig configures deterministic fault injection on the machine's
// interconnect (drop/dup/delay/stall probabilities and a seed); set it
// on MachineConfig.Faults to run over a lossy network. See docs/FAULTS.md.
type FaultConfig = network.FaultConfig

// FaultStats accounts the faults injected during one run.
type FaultStats = network.FaultStats

// RetryPolicy tunes the self-healing page protocol (timeouts, backoff,
// attempt bound) that makes the machine converge under injected faults.
type RetryPolicy = machine.RetryPolicy

// Experiment is one reproducible unit of the paper's evaluation.
type Experiment = core.Experiment

// Outcome is an experiment result with its shape checks.
type Outcome = core.Outcome

// Program is an affine loop nest for the conversion tool.
type Program = ir.Program

// ConversionResult reports a single-assignment conversion.
type ConversionResult = convert.Result

// Kernels returns all 24 Livermore kernels plus the paper's two class
// exemplar fragments.
func Kernels() []*Kernel { return loops.All() }

// KernelByKey returns a kernel by its key ("k1".."k24", "k14frag",
// "k18frag").
func KernelByKey(key string) (*Kernel, error) { return loops.ByKey(key) }

// PaperKernels returns the kernels the paper's evaluation discusses.
func PaperKernels() []*Kernel { return loops.PaperSet() }

// PaperConfig returns the paper's baseline simulator configuration:
// modulo layout, LRU, 256-element cache.
func PaperConfig(npe, pageSize int) SimConfig { return sim.PaperConfig(npe, pageSize) }

// NoCacheConfig returns the paper's cache-less comparison point.
func NoCacheConfig(npe, pageSize int) SimConfig { return sim.NoCacheConfig(npe, pageSize) }

// Simulate runs the counting simulator (the paper's methodology) over
// kernel key at problem size n (0 = kernel default).
func Simulate(key string, n int, cfg SimConfig) (*SimResult, error) {
	k, err := loops.ByKey(key)
	if err != nil {
		return nil, err
	}
	return sim.Run(k, n, cfg)
}

// Execute runs the kernel on the concurrent machine: one goroutine per
// PE, single-assignment memory, page caching and message passing.
func Execute(key string, n int, cfg MachineConfig) (*MachineResult, error) {
	k, err := loops.ByKey(key)
	if err != nil {
		return nil, err
	}
	return machine.Run(k, n, cfg)
}

// DefaultMachine returns the concurrent engine's baseline
// configuration.
func DefaultMachine(npe, pageSize int) MachineConfig { return machine.DefaultConfig(npe, pageSize) }

// Experiments returns every figure, table and ablation of the
// reproduction, in presentation order.
func Experiments() []Experiment { return core.Experiments() }

// RunExperiment runs one experiment by ID ("fig1".."fig5", "tableA",
// "tableB", "ablation-*").
func RunExperiment(id string) (*Outcome, error) {
	e, err := core.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Classify dynamically classifies kernel key into the §7 taxonomy.
func Classify(key string, n int) (Class, error) {
	k, err := loops.ByKey(key)
	if err != nil {
		return loops.ClassUnknown, err
	}
	cls, _, err := classify.Dynamic(k, n)
	return cls, err
}

// ConvertToSA applies the §5 automatic conversion tool to an affine
// loop program, returning the single-assignment form and the rewrite
// report.
func ConvertToSA(p *Program, n int) (*ConversionResult, error) { return convert.ToSA(p, n) }

// ParseProgram parses the Fortran-flavored loop surface syntax (see
// internal/ir and testdata/*.loop) into a Program.
func ParseProgram(src string) (*Program, error) { return ir.Parse(src) }

// Server is the batching, caching HTTP classification service over the
// sweep/replay engines (POST /v1/classify, POST /v1/sweep, …). Mount
// its Handler on an http.Server and Close it after Shutdown to drain.
type Server = serve.Server

// ServeOptions sizes a Server: worker pool, admission bound, result
// and stream cache capacities, request limits, deadlines, metrics.
// The zero value serves with defaults scaled from GOMAXPROCS.
type ServeOptions = serve.Options

// LoadOptions configures the deterministic load generator that drives
// `lfksimd -loadgen` and `make loadbench`.
type LoadOptions = serve.LoadOptions

// LoadReport is a measured load-run outcome (the BENCH history's
// "serve" section).
type LoadReport = serve.LoadReport

// NewServer builds the classification service; see docs/SERVING.md.
func NewServer(opts ServeOptions) *Server { return serve.New(opts) }

// LoadTest hammers a running service with a seeded duplicate/unique
// request mix and reports throughput, latency quantiles and
// server-side cache behavior.
func LoadTest(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	return serve.Load(ctx, opts)
}

// CostModel prices access classes in cycles for execution-time
// estimation (the paper's §9 future work).
type CostModel = sim.CostModel

// Timing is an execution-time and speedup estimate.
type Timing = sim.Timing

// DefaultCostModel returns the baseline access pricing.
func DefaultCostModel() CostModel { return sim.DefaultCostModel() }

// EstimateTiming prices a simulation result on a 2-D mesh of the
// run's size under the default cost model, returning per-PE busy
// time, makespan and speedup versus one PE.
func EstimateTiming(res *SimResult) Timing {
	return res.Estimate(sim.DefaultCostModel(), network.NewMesh2D(res.Config.NPE))
}
